"""Short-horizon supply forecasting for adaptive power margins.

The paper's power margin is a fixed fraction (Section 6.1): large enough
for the worst drift between tracking events, paid even on rock-steady
afternoons.  A natural refinement — in the spirit of the paper's future
work — sizes the margin from the supply's *recent behaviour*: a linear
trend plus a volatility term predicts how far the budget may fall before
the next tracking event, and the controller reserves exactly that.

``SupplyPredictor`` is deliberately simple (ordinary least squares over a
sliding window); the point of the ablation it powers is that even a naive
forecaster recovers most of the margin's cost on calm days while keeping
the robustness on volatile ones.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["SupplyPredictor"]


class SupplyPredictor:
    """Sliding-window linear forecaster of the solar power budget.

    Args:
        window: Number of recent (minute, power) samples retained.
        volatility_weight: How many standard deviations of residual
            scatter to add to the predicted drop.
    """

    def __init__(self, window: int = 10, volatility_weight: float = 1.0) -> None:
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        if volatility_weight < 0:
            raise ValueError(
                f"volatility_weight must be >= 0, got {volatility_weight}"
            )
        self.window = window
        self.volatility_weight = volatility_weight
        self._samples: deque[tuple[float, float]] = deque(maxlen=window)

    def observe(self, minute: float, power_w: float) -> None:
        """Record one budget sample."""
        if power_w < 0:
            raise ValueError(f"power must be >= 0, got {power_w}")
        self._samples.append((minute, power_w))

    @property
    def n_samples(self) -> int:
        """Samples currently in the window."""
        return len(self._samples)

    def predicted_drop_fraction(self, horizon_minutes: float) -> float | None:
        """Predicted fractional budget drop over the horizon, or None.

        Combines the fitted linear trend (only when falling) with the
        volatility term; returns a value in [0, 1].  None until the window
        holds at least three samples.
        """
        if len(self._samples) < 3:
            return None
        minutes = np.array([m for m, _ in self._samples])
        powers = np.array([p for _, p in self._samples])
        current = powers[-1]
        if current <= 0:
            return 1.0
        slope, intercept = np.polyfit(minutes, powers, 1)
        residuals = powers - (slope * minutes + intercept)
        trend_drop = max(0.0, -slope * horizon_minutes)
        volatility_drop = self.volatility_weight * float(np.std(residuals))
        return float(np.clip((trend_drop + volatility_drop) / current, 0.0, 1.0))

    def adaptive_margin(
        self,
        horizon_minutes: float,
        floor: float,
        ceiling: float,
    ) -> float:
        """A margin sized to the predicted drop, clamped to [floor, ceiling].

        Falls back to the ceiling while the window is still filling — the
        conservative choice at dawn and after utility fallbacks.
        """
        if not 0.0 <= floor <= ceiling < 1.0:
            raise ValueError(f"need 0 <= floor <= ceiling < 1, got [{floor}, {ceiling}]")
        drop = self.predicted_drop_fraction(horizon_minutes)
        if drop is None:
            return ceiling
        return float(np.clip(drop, floor, ceiling))

    def reset(self) -> None:
        """Clear the window (e.g. after a utility fallback)."""
        self._samples.clear()
