"""Per-core DVFS operating points and VID encoding (paper Section 5).

The paper models Intel SpeedStep-like scaling: six frequency/voltage
operating points from 2.5 GHz / 1.45 V down to 1.0 GHz / 0.95 V in
300 MHz / 0.1 V steps, communicated to per-core on-chip VRMs through a
Voltage Identification Digital (VID) code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OperatingPoint", "DVFSTable", "default_dvfs_table"]


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating point.

    Attributes:
        frequency_ghz: Core clock frequency [GHz].
        voltage_v: Core supply voltage [V].
    """

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_ghz}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage_v}")


class DVFSTable:
    """An ordered table of DVFS operating points, slowest first.

    Level 0 is the lowest V/F point; level ``len(table) - 1`` is the highest.
    The paper's assumption that voltage scales approximately linearly with
    frequency holds for the default table.
    """

    def __init__(self, points: list[OperatingPoint]) -> None:
        if len(points) < 2:
            raise ValueError("a DVFS table needs at least two operating points")
        freqs = [p.frequency_ghz for p in points]
        volts = [p.voltage_v for p in points]
        if sorted(freqs) != freqs or sorted(volts) != volts:
            raise ValueError(
                "operating points must be ordered ascending in both F and V"
            )
        if len(set(freqs)) != len(freqs):
            raise ValueError("operating-point frequencies must be distinct")
        self._points = tuple(points)

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, level: int) -> OperatingPoint:
        return self._points[self._check(level)]

    def _check(self, level: int) -> int:
        if not 0 <= level < len(self._points):
            raise IndexError(
                f"DVFS level {level} out of range [0, {len(self._points) - 1}]"
            )
        return level

    @property
    def min_level(self) -> int:
        """Lowest (slowest) level index: always 0."""
        return 0

    @property
    def max_level(self) -> int:
        """Highest (fastest) level index."""
        return len(self._points) - 1

    def frequency(self, level: int) -> float:
        """Frequency [GHz] at a level."""
        return self[level].frequency_ghz

    def voltage(self, level: int) -> float:
        """Voltage [V] at a level."""
        return self[level].voltage_v

    @property
    def max_voltage(self) -> float:
        """The supply voltage of the top level [V] (power-model reference)."""
        return self._points[-1].voltage_v

    @property
    def max_frequency(self) -> float:
        """The frequency of the top level [GHz]."""
        return self._points[-1].frequency_ghz

    def vid_bits(self) -> int:
        """Number of VID bits needed to encode every level."""
        return max(1, int(np.ceil(np.log2(len(self._points)))))

    def vid_of(self, level: int) -> int:
        """VID code of a level (the level index itself, zero-based)."""
        return self._check(level)

    def level_of_vid(self, vid: int) -> int:
        """Level index encoded by a VID code."""
        return self._check(vid)


def default_dvfs_table(n_levels: int = 6) -> DVFSTable:
    """The paper's SpeedStep-like table, optionally refined to more levels.

    With ``n_levels=6`` this is exactly the paper's configuration
    (1.0-2.5 GHz / 0.95-1.45 V).  Other level counts interpolate the same
    linear V(f) relationship — used by the DVFS-granularity ablation.
    """
    if n_levels < 2:
        raise ValueError(f"n_levels must be >= 2, got {n_levels}")
    freqs = np.linspace(1.0, 2.5, n_levels)
    volts = np.linspace(0.95, 1.45, n_levels)
    return DVFSTable(
        [OperatingPoint(float(f), float(v)) for f, v in zip(freqs, volts)]
    )
