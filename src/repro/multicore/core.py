"""A single core: DVFS state + workload phase behaviour + power model.

Each core runs one program (trace-driven phase IPC), sits at one DVFS level,
and can be power-gated (PCPG).  The core exposes both its *actual*
power/throughput at a time instant and *predictions* for neighbouring DVFS
levels — the observables the SolarCore controller derives from performance
counters and I/V sensors when computing throughput-power ratios.
"""

from __future__ import annotations

from repro.multicore.dvfs import DVFSTable
from repro.multicore.power_model import CorePowerModel
from repro.workloads.benchmarks import Benchmark
from repro.workloads.phases import cached_phase_trace

__all__ = ["Core"]


class Core:
    """One core of the multi-core chip.

    Args:
        core_id: Index of this core on the chip.
        bench: The program this core runs.
        power_model: This core type's power model (shared across cores of
            the same type on the same chip).
        seed: Seed for the program's phase trace.
        initial_level: Starting DVFS level (defaults to the top level).
        epi_scale: Multiplier on the benchmark's energy per instruction —
            the core type's POWER base folded with any tech-node
            dynamic-energy scaling.
        ipc_scale: Multiplier on the benchmark's phase IPC — the core
            type's PERF base (microarchitectural width).
        type_name: Core-type name from the owning :class:`ChipSpec`.
    """

    def __init__(
        self,
        core_id: int,
        bench: Benchmark,
        power_model: CorePowerModel,
        seed: int | None = None,
        initial_level: int | None = None,
        epi_scale: float = 1.0,
        ipc_scale: float = 1.0,
        type_name: str = "alpha",
    ) -> None:
        self.core_id = core_id
        self.bench = bench
        self.power_model = power_model
        self.type_name = type_name
        self.phase_trace = cached_phase_trace(bench, seed=seed)
        table = power_model.table
        self._level = table.max_level if initial_level is None else initial_level
        table[self._level]  # validate
        self._gated = False
        self._retired_ginst = 0.0
        self._transitions = 0
        self._transition_volts = 0.0
        # Monotone state version: bumped on every real level/gating change.
        # Memo layers (chip aggregates, TPR tables) key on it to reuse
        # bit-identical values while the state is frozen mid-track-event.
        self._version = 0
        self._tpr_memo: dict = {}
        self._min_level = table.min_level
        self._max_level = table.max_level
        self._epi_nj = bench.epi_nj * epi_scale
        self._ipc_scale = ipc_scale

    # ------------------------------------------------------------------
    # DVFS / gating state
    # ------------------------------------------------------------------
    @property
    def table(self) -> DVFSTable:
        """The chip's DVFS table."""
        return self.power_model.table

    @property
    def level(self) -> int:
        """Current DVFS level."""
        return self._level

    def set_level(self, level: int) -> None:
        """Move the core to a DVFS level (validates the index).

        Real transitions (level actually changes) are counted, along with
        the cumulative voltage swing — the inputs to VRM overhead
        accounting (:mod:`repro.multicore.vrm`).
        """
        self.table[level]  # raises IndexError when out of range
        if level != self._level:
            self._transitions += 1
            self._transition_volts += abs(
                self.table.voltage(level) - self.table.voltage(self._level)
            )
            self._version += 1
        self._level = level

    @property
    def transitions(self) -> int:
        """Number of real DVFS transitions performed so far."""
        return self._transitions

    @property
    def transition_volts(self) -> float:
        """Cumulative voltage swing across all transitions [V]."""
        return self._transition_volts

    @property
    def gated(self) -> bool:
        """Whether the core is power-gated (PCPG)."""
        return self._gated

    def gate(self) -> None:
        """Power-gate the core: zero power, zero throughput."""
        if not self._gated:
            self._version += 1
        self._gated = True

    def ungate(self) -> None:
        """Restore the core from the gated state (at its stored level)."""
        if self._gated:
            self._version += 1
        self._gated = False

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    def ipc_at(self, minute: float) -> float:
        """Effective IPC at an absolute time [minutes].

        The benchmark's phase IPC scaled by the core type's PERF base —
        what the performance counters on *this* core would report.
        """
        return self._ipc_scale * self.phase_trace.ipc_at(minute)

    def power_at(self, minute: float) -> float:
        """Core power [W] at a time instant (zero when gated)."""
        if self._gated:
            return 0.0
        return self.power_model.total_power(
            self._level, self._epi_nj,
            self._ipc_scale * self.phase_trace.ipc_at(minute),
        )

    def throughput_at(self, minute: float) -> float:
        """Core throughput [GIPS] at a time instant (zero when gated)."""
        if self._gated:
            return 0.0
        return self.power_model.throughput_gips(
            self._level, self._ipc_scale * self.phase_trace.ipc_at(minute)
        )

    def power_at_level(self, level: int, minute: float) -> float:
        """Predicted core power [W] if the core ran at ``level`` now."""
        return self.power_model.total_power(
            level, self._epi_nj,
            self._ipc_scale * self.phase_trace.ipc_at(minute),
        )

    def throughput_at_level(self, level: int, minute: float) -> float:
        """Predicted throughput [GIPS] if the core ran at ``level`` now."""
        return self.power_model.throughput_gips(
            level, self._ipc_scale * self.phase_trace.ipc_at(minute)
        )

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    def advance(self, minute: float, dt_minutes: float) -> float:
        """Retire instructions over ``[minute, minute + dt)``.

        Returns the giga-instructions retired in the interval and adds them
        to the core's running total.
        """
        if dt_minutes < 0:
            raise ValueError(f"dt_minutes must be non-negative, got {dt_minutes}")
        retired = self.throughput_at(minute) * dt_minutes * 60.0
        self._retired_ginst += retired
        return retired

    def credit_retired(self, ginst: float) -> None:
        """Add instructions retired by a batched (vectorized) evaluation.

        The batched day engine computes whole spans of per-step retirement
        as array programs and credits each core's total here instead of
        calling :meth:`advance` once per step.
        """
        if ginst < 0:
            raise ValueError(f"ginst must be non-negative, got {ginst}")
        self._retired_ginst += ginst

    @property
    def retired_ginst(self) -> float:
        """Total giga-instructions retired so far."""
        return self._retired_ginst
