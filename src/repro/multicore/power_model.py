"""Core-level power estimation (the Wattch/CACTI substitute).

The paper extends Wattch and CACTI to take (V, f) as inputs.  At the
granularity the SolarCore controller observes (I/V sensors at 10-minute
tracking periods), per-core power is captured by the standard
activity-based model:

    P_dynamic = EPI_ref * (V / Vmax)^2 * IPC * f        [switching energy]
    P_leakage = P_leak_ref * (V / Vmax)^2               [subthreshold/gate]

``EPI_ref`` is the benchmark's energy-per-instruction measured at the top
operating point — exactly how the paper classifies workloads (Table 5).
Since f scales ~linearly with V, total core power is ~cubic in V, matching
the paper's ``P = c * V^3`` assumption (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.dvfs import DVFSTable

__all__ = ["CorePowerModel"]

#: Default per-core leakage at the top voltage [W].
DEFAULT_LEAKAGE_W = 1.0


@dataclass(frozen=True)
class CorePowerModel:
    """Maps (DVFS level, activity) to core power.

    Attributes:
        table: The DVFS operating-point table.
        leakage_ref_w: Leakage power at the top voltage [W].
    """

    table: DVFSTable
    leakage_ref_w: float = DEFAULT_LEAKAGE_W

    def dynamic_power(self, level: int, epi_nj: float, ipc: float) -> float:
        """Dynamic power [W] of a core running at ``level``.

        Args:
            level: DVFS level index.
            epi_nj: Energy per instruction at the top operating point [nJ].
            ipc: Instructions per cycle at the current program phase.
        """
        point = self.table[level]
        v_scale = (point.voltage_v / self.table.max_voltage) ** 2
        # nJ/inst * inst/cycle * Gcycles/s = W
        return epi_nj * v_scale * ipc * point.frequency_ghz

    def leakage_power(self, level: int) -> float:
        """Leakage power [W] at a DVFS level (zero only if power-gated)."""
        point = self.table[level]
        return self.leakage_ref_w * (point.voltage_v / self.table.max_voltage) ** 2

    def total_power(self, level: int, epi_nj: float, ipc: float) -> float:
        """Total (dynamic + leakage) core power [W]."""
        return self.dynamic_power(level, epi_nj, ipc) + self.leakage_power(level)

    def throughput_gips(self, level: int, ipc: float) -> float:
        """Core throughput [giga-instructions/s] at a level and phase IPC.

        Voltage scaling leaves IPC unchanged (paper assumption 3); throughput
        is proportional to frequency.
        """
        return ipc * self.table[level].frequency_ghz
