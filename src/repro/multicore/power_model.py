"""Core-level power estimation (the Wattch/CACTI substitute).

The paper extends Wattch and CACTI to take (V, f) as inputs.  At the
granularity the SolarCore controller observes (I/V sensors at 10-minute
tracking periods), per-core power is captured by the standard
activity-based model:

    P_dynamic = EPI_ref * (V / Vmax)^2 * IPC * f        [switching energy]
    P_leakage = P_leak_ref * (V / Vmax)^2               [subthreshold/gate]

``EPI_ref`` is the benchmark's energy-per-instruction measured at the top
operating point — exactly how the paper classifies workloads (Table 5).
Since f scales ~linearly with V, total core power is ~cubic in V, matching
the paper's ``P = c * V^3`` assumption (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.dvfs import DVFSTable

__all__ = ["CorePowerModel"]

#: Default per-core leakage at the top voltage [W].
DEFAULT_LEAKAGE_W = 1.0


@dataclass(frozen=True)
class CorePowerModel:
    """Maps (DVFS level, activity) to core power.

    Attributes:
        table: The DVFS operating-point table.
        leakage_ref_w: Leakage power at the top voltage [W].
    """

    table: DVFSTable
    leakage_ref_w: float = DEFAULT_LEAKAGE_W

    def __post_init__(self) -> None:
        # Per-level constants, hoisted once: the controller evaluates these
        # formulas tens of thousands of times per simulated day, and the
        # table indexing + voltage-ratio arithmetic dominated the profile.
        # Each cached value is the same product in the same order as the
        # inline expression it replaces, so results are bit-identical.
        vmax = self.table.max_voltage
        scale = tuple(
            (self.table.voltage(level) / vmax) ** 2
            for level in range(len(self.table))
        )
        object.__setattr__(self, "_v_scale", scale)
        object.__setattr__(
            self,
            "_freq",
            tuple(self.table.frequency(level) for level in range(len(self.table))),
        )
        object.__setattr__(
            self, "_leak", tuple(self.leakage_ref_w * s for s in scale)
        )

    def _check(self, level: int) -> int:
        if not 0 <= level < len(self._freq):
            raise IndexError(
                f"DVFS level {level} out of range [0, {len(self._freq) - 1}]"
            )
        return level

    def dynamic_power(self, level: int, epi_nj: float, ipc: float) -> float:
        """Dynamic power [W] of a core running at ``level``.

        Args:
            level: DVFS level index.
            epi_nj: Energy per instruction at the top operating point [nJ].
            ipc: Instructions per cycle at the current program phase.
        """
        # nJ/inst * inst/cycle * Gcycles/s = W
        return epi_nj * self._v_scale[self._check(level)] * ipc * self._freq[level]

    def leakage_power(self, level: int) -> float:
        """Leakage power [W] at a DVFS level (zero only if power-gated)."""
        return self._leak[self._check(level)]

    def total_power(self, level: int, epi_nj: float, ipc: float) -> float:
        """Total (dynamic + leakage) core power [W]."""
        if not 0 <= level < len(self._freq):
            raise IndexError(
                f"DVFS level {level} out of range [0, {len(self._freq) - 1}]"
            )
        return (
            epi_nj * self._v_scale[level] * ipc * self._freq[level]
            + self._leak[level]
        )

    def throughput_gips(self, level: int, ipc: float) -> float:
        """Core throughput [giga-instructions/s] at a level and phase IPC.

        Voltage scaling leaves IPC unchanged (paper assumption 3); throughput
        is proportional to frequency.
        """
        return ipc * self._freq[self._check(level)]
