"""Technology-node scaling tables (lumos-style ITRS / conservative models).

The paper evaluates one chip at one node — 90 nm, the contemporary
process of the Alpha-class cores in its Wattch/CACTI setup.  To ask how
the SolarCore allocation story changes across process generations, this
module provides per-node multipliers for frequency, per-instruction
switching energy, leakage, supply voltage, and area, in the style of the
lumos MPSoC model's ``freq_scl`` / ``power_scl`` / ``vdd_scl`` tables:

* ``itrs`` — the optimistic ITRS-projection flavour: frequency keeps
  climbing steeply, dynamic energy per operation falls fast, and
  leakage grows with each generation.
* ``cons`` — the conservative flavour: the same monotone trends but
  flattened toward what post-Dennard silicon actually delivered.

Every multiplier is expressed **relative to the 90 nm base node**, so
``TechScaling.for_node(90, model)`` is exactly 1.0 on every axis for
both models — the invariant that keeps the default chip byte-identical
to the pre-ChipSpec model.  The lumos tables are 45 nm-based; the values
here follow the same generation-over-generation ratios re-anchored to
90 nm (see DESIGN.md section 14 for the provenance notes).

Voltage-bounded DVFS: each node also carries a threshold voltage
(``vth_v``); a scaled DVFS table's supply rail may not drop below
``DVFS_FLOOR_FACTOR * vth`` — the near-threshold floor lumos encodes as
its ``DVFS_L_BOUND``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "TECH_NODES_NM",
    "TECH_MODELS",
    "BASE_NODE_NM",
    "DVFS_FLOOR_FACTOR",
    "TechScaling",
    "tech_scaling",
]

#: Process nodes the scaling tables cover [nm], newest last.
TECH_NODES_NM = (90, 65, 45, 32, 22, 16)

#: Scaling-model flavours (lumos naming): ITRS projections vs conservative.
TECH_MODELS = ("itrs", "cons")

#: The reference node every multiplier is expressed against — the
#: paper's own process.  All multipliers are exactly 1.0 here.
BASE_NODE_NM = 90

#: A scaled DVFS rail may not drop below this multiple of the node's
#: threshold voltage (the lumos DVFS lower bound).
DVFS_FLOOR_FACTOR = 1.2

#: Frequency multiplier vs 90 nm at each node's nominal Vdd.
_FREQ_SCALE = {
    "itrs": {90: 1.0, 65: 1.42, 45: 2.08, 32: 2.98, 22: 4.21, 16: 5.85},
    "cons": {90: 1.0, 65: 1.26, 45: 1.55, 32: 1.89, 22: 2.26, 16: 2.68},
}

#: Per-instruction switching-energy multiplier vs 90 nm (C * Vdd^2 at
#: the node's nominal operating point).
_DYNAMIC_SCALE = {
    "itrs": {90: 1.0, 65: 0.71, 45: 0.52, 32: 0.39, 22: 0.29, 16: 0.22},
    "cons": {90: 1.0, 65: 0.81, 45: 0.66, 32: 0.54, 22: 0.44, 16: 0.37},
}

#: Per-core leakage multiplier vs 90 nm (subthreshold + gate growth).
_LEAKAGE_SCALE = {
    "itrs": {90: 1.0, 65: 1.38, 45: 1.82, 32: 2.41, 22: 3.17, 16: 4.10},
    "cons": {90: 1.0, 65: 1.25, 45: 1.52, 32: 1.86, 22: 2.23, 16: 2.62},
}

#: Nominal supply-voltage multiplier vs 90 nm.
_VDD_SCALE = {
    "itrs": {90: 1.0, 65: 0.85, 45: 0.77, 32: 0.69, 22: 0.62, 16: 0.54},
    "cons": {90: 1.0, 65: 0.92, 45: 0.85, 32: 0.77, 22: 0.71, 16: 0.65},
}

#: Core-area multiplier vs 90 nm (both models: area roughly halves per
#: generation; shared table, as in lumos ``area_scl``).
_AREA_SCALE = {90: 1.0, 65: 0.52, 45: 0.27, 32: 0.14, 22: 0.073, 16: 0.038}

#: Threshold voltage per node [V] (lumos ``vth`` table flavour).
_VTH_V = {90: 0.48, 65: 0.43, 45: 0.39, 32: 0.34, 22: 0.30, 16: 0.27}


@dataclass(frozen=True)
class TechScaling:
    """The multipliers one (node, model) pair applies to a core type.

    Attributes:
        node_nm: Process node [nm].
        model: ``itrs`` or ``cons``.
        frequency: Multiplier on every DVFS frequency.
        dynamic_power: Multiplier on per-instruction switching energy.
        leakage: Multiplier on the leakage reference power.
        vdd: Multiplier on every DVFS supply voltage.
        area: Multiplier on core area.
        vth_v: Threshold voltage at the node [V].
    """

    node_nm: int
    model: str
    frequency: float
    dynamic_power: float
    leakage: float
    vdd: float
    area: float
    vth_v: float

    @property
    def v_floor(self) -> float:
        """Lowest supply voltage a scaled DVFS table may use [V]."""
        return DVFS_FLOOR_FACTOR * self.vth_v

    @property
    def is_base(self) -> bool:
        """True at the 90 nm reference node (all multipliers 1.0)."""
        return self.node_nm == BASE_NODE_NM


@lru_cache(maxsize=None)
def tech_scaling(node_nm: int = BASE_NODE_NM, model: str = "itrs") -> TechScaling:
    """The :class:`TechScaling` for a (node, model) pair.

    Raises:
        ValueError: Unknown node or model (the message lists the
            supported values).
    """
    if model not in TECH_MODELS:
        raise ValueError(
            f"tech model must be one of {TECH_MODELS}, got {model!r}"
        )
    if node_nm not in TECH_NODES_NM:
        raise ValueError(
            f"tech node must be one of {TECH_NODES_NM} nm, got {node_nm!r}"
        )
    return TechScaling(
        node_nm=node_nm,
        model=model,
        frequency=_FREQ_SCALE[model][node_nm],
        dynamic_power=_DYNAMIC_SCALE[model][node_nm],
        leakage=_LEAKAGE_SCALE[model][node_nm],
        vdd=_VDD_SCALE[model][node_nm],
        area=_AREA_SCALE[node_nm],
        vth_v=_VTH_V[node_nm],
    )
