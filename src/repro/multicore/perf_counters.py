"""Performance-counter profiling (the controller's view of the chip).

At the start of each tracking period the SolarCore controller reads, per
core, the committed-instruction counters and the I/V sensors, yielding the
(IPC, power, throughput) triple per core.  ``profile_chip`` packages that
snapshot; the TPR optimizer consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.chip import MultiCoreChip

__all__ = ["CoreProfile", "profile_chip"]


@dataclass(frozen=True)
class CoreProfile:
    """One core's profiling snapshot at a tracking-period boundary.

    Attributes:
        core_id: Core index.
        level: DVFS level at sampling time.
        ipc: Phase IPC observed through the counters.
        power_w: Core power [W] observed through the I/V sensors.
        throughput_gips: Core throughput [GIPS].
        gated: Whether the core is power-gated.
    """

    core_id: int
    level: int
    ipc: float
    power_w: float
    throughput_gips: float
    gated: bool


def profile_chip(chip: MultiCoreChip, minute: float) -> list[CoreProfile]:
    """Profile every core of ``chip`` at an instant.

    Returns one :class:`CoreProfile` per core, in core order.
    """
    return [
        CoreProfile(
            core_id=core.core_id,
            level=core.level,
            ipc=core.ipc_at(minute),
            power_w=core.power_at(minute),
            throughput_gips=core.throughput_at(minute),
            gated=core.gated,
        )
        for core in chip.cores
    ]
