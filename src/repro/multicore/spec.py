"""Serializable chip specifications: named core types, mixes, tech nodes.

The pre-ChipSpec model hard-coded "8 identical Alpha-class cores sharing
one :func:`~repro.multicore.dvfs.default_dvfs_table`".  A
:class:`ChipSpec` makes that an explicit, serializable value:

* a **core-mix vector** — ``(core type, count)`` pairs in core-index
  order, drawn from the :data:`CORE_TYPES` registry (the paper's
  ``alpha`` core plus lumos-style ``big`` / ``little`` / ``accel``
  classes) or spelled inline with custom PERF/POWER/DVFS parameters;
* a **tech node + scaling model** — every core type's DVFS table,
  switching energy, and leakage are scaled by the
  :mod:`repro.multicore.techscale` multipliers, with the supply rail
  floored at the node's near-threshold bound;
* a **canonical string form** (round-trips through :meth:`ChipSpec.parse`)
  and a **sha256 identity** over the fully-explicit form — the value
  cache keys, run manifests, and service jobs carry.

The default spec ``"alpha8"`` is exactly the pre-refactor chip: at the
90 nm base node every scaling multiplier is 1.0, so the golden fixtures
stay byte-identical.

Spec grammar (compact forms parse; ``canonical()`` emits the explicit
one unless the spec equals a registered preset)::

    alpha8                              # preset name
    big*4+little*4                      # mix at the 90 nm base node
    alpha*8@45nm:cons                   # default core type, scaled node
    tiny[f=0.5-1.2/4,v=0.8-1.0]*6       # inline custom core type

Per-type DVFS tables and power models are built once per (type, node,
model) triple through ``lru_cache`` — constructing a thousand sweep
chips re-derives nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from functools import lru_cache

import numpy as np

from repro.multicore.dvfs import DVFSTable, OperatingPoint
from repro.multicore.power_model import CorePowerModel
from repro.multicore.techscale import BASE_NODE_NM, TechScaling, tech_scaling

__all__ = [
    "CoreTypeSpec",
    "ChipSpec",
    "CORE_TYPES",
    "CHIP_PRESETS",
    "DEFAULT_CHIP_SPEC_NAME",
    "default_chip_spec",
    "resolve_chip_spec",
    "dvfs_table_for",
    "power_model_for",
]


@dataclass(frozen=True)
class CoreTypeSpec:
    """One core type: DVFS range plus PERF/POWER/AREA bases at 90 nm.

    Attributes:
        name: Type name (registry key or inline label).
        freq_min_ghz / freq_max_ghz: DVFS frequency range at the base
            node [GHz]; levels interpolate linearly.
        volt_min_v / volt_max_v: Matching supply-voltage range [V].
        n_levels: Operating points in the per-type DVFS table.
        ipc_scale: Multiplier on the benchmark's phase IPC — the
            microarchitectural PERF base (out-of-order width, or an
            accelerator's effective issue rate).
        epi_scale: Multiplier on the benchmark's energy-per-instruction
            — the POWER base.
        leakage_ref_w: Leakage at the type's top voltage, 90 nm [W].
        area_mm2: Core area at 90 nm [mm^2] (reporting only; dark-silicon
            accounting rides on it).
    """

    name: str
    freq_min_ghz: float = 1.0
    freq_max_ghz: float = 2.5
    volt_min_v: float = 0.95
    volt_max_v: float = 1.45
    n_levels: int = 6
    ipc_scale: float = 1.0
    epi_scale: float = 1.0
    leakage_ref_w: float = 1.0
    area_mm2: float = 25.0

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in "*+@;:,[]= "):
            raise ValueError(f"invalid core-type name {self.name!r}")
        if not 0 < self.freq_min_ghz < self.freq_max_ghz:
            raise ValueError(
                f"{self.name}: need 0 < freq_min < freq_max, got "
                f"{self.freq_min_ghz}..{self.freq_max_ghz} GHz"
            )
        if not 0 < self.volt_min_v <= self.volt_max_v:
            raise ValueError(
                f"{self.name}: need 0 < volt_min <= volt_max, got "
                f"{self.volt_min_v}..{self.volt_max_v} V"
            )
        if self.n_levels < 2:
            raise ValueError(f"{self.name}: n_levels must be >= 2")
        for field_name in ("ipc_scale", "epi_scale", "area_mm2"):
            if getattr(self, field_name) <= 0:
                raise ValueError(
                    f"{self.name}: {field_name} must be positive"
                )
        if self.leakage_ref_w < 0:
            raise ValueError(f"{self.name}: leakage_ref_w must be >= 0")

    def inline(self) -> str:
        """The inline spelling, e.g. ``big[f=1.2-3.2/8,v=1.0-1.5,...]``."""
        return (
            f"{self.name}[f={self.freq_min_ghz!r}-{self.freq_max_ghz!r}"
            f"/{self.n_levels},v={self.volt_min_v!r}-{self.volt_max_v!r},"
            f"ipc={self.ipc_scale!r},epi={self.epi_scale!r},"
            f"leak={self.leakage_ref_w!r},area={self.area_mm2!r}]"
        )


#: The core-type registry: the paper's Alpha-class core plus lumos-style
#: heterogeneous classes.  ``little`` is a narrow in-order core (low EPI,
#: low IPC, tiny leakage); ``big`` a wide out-of-order core (the TPR
#: spread's high end); ``accel`` an accelerator-class unit — huge
#: effective IPC at low energy per operation, but a shallow DVFS range.
CORE_TYPES: dict[str, CoreTypeSpec] = {
    "alpha": CoreTypeSpec("alpha"),
    "big": CoreTypeSpec(
        "big", freq_min_ghz=1.2, freq_max_ghz=3.2,
        volt_min_v=1.0, volt_max_v=1.5, n_levels=8,
        ipc_scale=1.35, epi_scale=1.6, leakage_ref_w=2.2, area_mm2=30.0,
    ),
    "little": CoreTypeSpec(
        "little", freq_min_ghz=0.6, freq_max_ghz=1.6,
        volt_min_v=0.85, volt_max_v=1.15, n_levels=4,
        ipc_scale=0.6, epi_scale=0.45, leakage_ref_w=0.3, area_mm2=5.0,
    ),
    "accel": CoreTypeSpec(
        "accel", freq_min_ghz=0.8, freq_max_ghz=1.2,
        volt_min_v=0.9, volt_max_v=1.05, n_levels=3,
        ipc_scale=2.0, epi_scale=0.25, leakage_ref_w=0.5, area_mm2=12.0,
    ),
}


def _fmt_num(value: float) -> str:
    """Shortest exact decimal (``repr``) — round-trips through ``float``."""
    return repr(float(value))


@dataclass(frozen=True)
class ChipSpec:
    """A complete chip description: mix x tech node x uncore.

    Attributes:
        mix: ``(core type, count)`` pairs in core-index order.
        tech_nm: Process node [nm] (see
            :data:`~repro.multicore.techscale.TECH_NODES_NM`).
        tech_model: Scaling-model flavour (``itrs`` or ``cons``).
        uncore_power_w: Constant chip power outside the core DVFS
            domains [W].
    """

    mix: tuple[tuple[CoreTypeSpec, int], ...]
    tech_nm: int = BASE_NODE_NM
    tech_model: str = "itrs"
    uncore_power_w: float = 45.0

    def __post_init__(self) -> None:
        mix = tuple((ct, int(count)) for ct, count in self.mix)
        if not mix:
            raise ValueError("a chip spec needs at least one core-type entry")
        for ct, count in mix:
            if not isinstance(ct, CoreTypeSpec):
                raise TypeError(
                    f"mix entries must pair CoreTypeSpec with a count, "
                    f"got {type(ct).__name__}"
                )
            if count < 1:
                raise ValueError(f"core count for {ct.name!r} must be >= 1")
        object.__setattr__(self, "mix", mix)
        if self.uncore_power_w < 0:
            raise ValueError(
                f"uncore_power_w must be >= 0, got {self.uncore_power_w}"
            )
        tech_scaling(self.tech_nm, self.tech_model)  # validates node/model

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total core count."""
        return sum(count for _, count in self.mix)

    def expand(self) -> tuple[CoreTypeSpec, ...]:
        """One :class:`CoreTypeSpec` per core, in core-index order."""
        out: list[CoreTypeSpec] = []
        for ct, count in self.mix:
            out.extend([ct] * count)
        return tuple(out)

    def scaling(self) -> TechScaling:
        """The tech-scaling multipliers this spec's node applies."""
        return tech_scaling(self.tech_nm, self.tech_model)

    @property
    def homogeneous(self) -> bool:
        """True when every core is the same type."""
        return len({ct for ct, _ in self.mix}) == 1

    def area_mm2(self) -> float:
        """Total core area at the spec's node [mm^2] (uncore excluded)."""
        scale = self.scaling().area
        return sum(ct.area_mm2 * count for ct, count in self.mix) * scale

    # ------------------------------------------------------------------
    # Canonical form + identity
    # ------------------------------------------------------------------
    def explicit(self) -> str:
        """The fully-explicit canonical string (never a preset name).

        This is what :meth:`identity` hashes: two specs share an identity
        exactly when every mix entry, node, model, and uncore value is
        equal — renaming a preset cannot alias a different chip.
        """
        terms = []
        for ct, count in self.mix:
            registered = CORE_TYPES.get(ct.name)
            name = ct.name if registered == ct else ct.inline()
            terms.append(f"{name}*{count}")
        return (
            f"{'+'.join(terms)}@{self.tech_nm}nm:{self.tech_model}"
            f";uncore={_fmt_num(self.uncore_power_w)}"
        )

    def canonical(self) -> str:
        """The compact canonical string: a preset name when one matches,
        the explicit form otherwise.  ``parse(canonical())`` round-trips."""
        name = _PRESET_BY_SPEC.get(self)
        return name if name is not None else self.explicit()

    def identity(self) -> str:
        """sha256 hex digest of the explicit canonical form."""
        return hashlib.sha256(self.explicit().encode()).hexdigest()

    def describe(self) -> str:
        """Human-readable summary for logs and the CLI."""
        mix = " + ".join(f"{count}x {ct.name}" for ct, count in self.mix)
        return (
            f"{self.canonical()}: {mix} @ {self.tech_nm} nm "
            f"({self.tech_model}), uncore {self.uncore_power_w:g} W, "
            f"{self.area_mm2():.0f} mm^2"
        )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> ChipSpec:
        """Parse a spec string (preset name, mix grammar, or explicit form).

        Raises:
            ValueError: Malformed spec; the message names the bad part.
        """
        text = text.strip()
        if not text:
            raise ValueError("empty chip spec")
        preset = CHIP_PRESETS.get(text)
        if preset is not None:
            return preset
        body = text
        uncore = 45.0
        node, model = BASE_NODE_NM, "itrs"
        parts = body.split(";")
        body = parts[0]
        for option in parts[1:]:
            key, sep, value = option.partition("=")
            if not sep or key != "uncore":
                raise ValueError(
                    f"unknown chip-spec option {option!r} (known: uncore=W)"
                )
            uncore = _parse_float(value, f"uncore in {text!r}")
        if "@" in body:
            body, _, tech = body.partition("@")
            node_txt, _, model_txt = tech.partition(":")
            node_txt = node_txt.strip().removesuffix("nm")
            try:
                node = int(node_txt)
            except ValueError:
                raise ValueError(
                    f"bad tech node {node_txt!r} in chip spec {text!r}"
                ) from None
            if model_txt:
                model = model_txt.strip()
        mix = tuple(
            _parse_mix_term(term, text) for term in body.split("+")
        )
        try:
            return cls(
                mix=mix, tech_nm=node, tech_model=model, uncore_power_w=uncore
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"chip spec {text!r}: {exc}") from exc


def _parse_float(value: str, where: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"bad number {value!r} for {where}") from None


def _parse_mix_term(term: str, full: str) -> tuple[CoreTypeSpec, int]:
    """``type*count`` (count optional) -> a validated mix entry."""
    term = term.strip()
    head, star, count_txt = term.rpartition("*")
    if star:
        try:
            count = int(count_txt)
        except ValueError:
            raise ValueError(
                f"bad core count {count_txt!r} in chip spec {full!r}"
            ) from None
    else:
        head, count = term, 1
    head = head.strip()
    if "[" in head:
        return _parse_inline_type(head, full), count
    ct = CORE_TYPES.get(head)
    if ct is None:
        raise ValueError(
            f"unknown core type {head!r} in chip spec {full!r} "
            f"(known: {', '.join(sorted(CORE_TYPES))})"
        )
    return ct, count


#: Inline parameter keys -> CoreTypeSpec field(s) they set.
_INLINE_KEYS = ("f", "v", "ipc", "epi", "leak", "area")


def _parse_inline_type(head: str, full: str) -> CoreTypeSpec:
    """``name[f=lo-hi/n,v=lo-hi,ipc=x,epi=x,leak=x,area=x]`` -> spec.

    Unspecified parameters keep the ``alpha`` defaults; a registered
    name as the label starts from that type instead.
    """
    name, _, rest = head.partition("[")
    name = name.strip()
    if not rest.endswith("]"):
        raise ValueError(f"unterminated core-type spec {head!r} in {full!r}")
    base = CORE_TYPES.get(name, CoreTypeSpec(name))
    updates: dict[str, object] = {}
    body = rest[:-1].strip()
    for item in filter(None, (p.strip() for p in body.split(","))):
        key, sep, value = item.partition("=")
        if not sep or key not in _INLINE_KEYS:
            raise ValueError(
                f"unknown core-type parameter {item!r} in {full!r} "
                f"(known: {', '.join(_INLINE_KEYS)})"
            )
        where = f"{key} in {full!r}"
        if key == "f":
            span, _, levels = value.partition("/")
            lo, sep2, hi = span.partition("-")
            if not sep2:
                raise ValueError(f"expected f=lo-hi[/n], got {item!r}")
            updates["freq_min_ghz"] = _parse_float(lo, where)
            updates["freq_max_ghz"] = _parse_float(hi, where)
            if levels:
                try:
                    updates["n_levels"] = int(levels)
                except ValueError:
                    raise ValueError(
                        f"bad level count {levels!r} for {where}"
                    ) from None
        elif key == "v":
            lo, sep2, hi = value.partition("-")
            if not sep2:
                raise ValueError(f"expected v=lo-hi, got {item!r}")
            updates["volt_min_v"] = _parse_float(lo, where)
            updates["volt_max_v"] = _parse_float(hi, where)
        else:
            field_name = {
                "ipc": "ipc_scale", "epi": "epi_scale",
                "leak": "leakage_ref_w", "area": "area_mm2",
            }[key]
            updates[field_name] = _parse_float(value, where)
    return replace(base, **updates) if updates else base


#: Named chip presets.  ``alpha8`` is the paper chip — the pre-ChipSpec
#: model exactly, and the byte-identity reference for the golden suite.
CHIP_PRESETS: dict[str, ChipSpec] = {
    "alpha8": ChipSpec(mix=((CORE_TYPES["alpha"], 8),)),
    "biglittle": ChipSpec(
        mix=((CORE_TYPES["big"], 4), (CORE_TYPES["little"], 4))
    ),
    "hetero3": ChipSpec(
        mix=(
            (CORE_TYPES["big"], 2),
            (CORE_TYPES["little"], 4),
            (CORE_TYPES["accel"], 2),
        )
    ),
    "little8": ChipSpec(mix=((CORE_TYPES["little"], 8),)),
}

#: Reverse map for :meth:`ChipSpec.canonical`.
_PRESET_BY_SPEC: dict[ChipSpec, str] = {
    spec: name for name, spec in CHIP_PRESETS.items()
}

#: The config default — the paper chip.
DEFAULT_CHIP_SPEC_NAME = "alpha8"


def default_chip_spec() -> ChipSpec:
    """The ``alpha8`` preset (the paper's homogeneous chip)."""
    return CHIP_PRESETS[DEFAULT_CHIP_SPEC_NAME]


def resolve_chip_spec(value: ChipSpec | str | None) -> ChipSpec:
    """A :class:`ChipSpec` from a spec, a spec string, or None (default)."""
    if value is None:
        return default_chip_spec()
    if isinstance(value, ChipSpec):
        return value
    if isinstance(value, str):
        return ChipSpec.parse(value)
    raise TypeError(
        f"chip spec must be a ChipSpec or string, got {type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Cached per-type table / model construction
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def dvfs_table_for(core_type: CoreTypeSpec, scaling: TechScaling) -> DVFSTable:
    """The (cached) scaled DVFS table for a core type at a tech node.

    Frequencies and voltages interpolate linearly over the type's range,
    then scale by the node's multipliers; the supply rail is floored at
    the node's near-threshold bound (levels whose scaled voltage would
    dip below it are clamped — frequencies keep their spacing, so the
    table stays valid).  At the 90 nm base node both multipliers are
    exactly 1.0 and the ``alpha`` table is bit-identical to
    :func:`~repro.multicore.dvfs.default_dvfs_table`.
    """
    freqs = np.linspace(
        core_type.freq_min_ghz, core_type.freq_max_ghz, core_type.n_levels
    ) * scaling.frequency
    volts = np.linspace(
        core_type.volt_min_v, core_type.volt_max_v, core_type.n_levels
    ) * scaling.vdd
    volts = np.maximum(volts, scaling.v_floor)
    return DVFSTable(
        [OperatingPoint(float(f), float(v)) for f, v in zip(freqs, volts)]
    )


@lru_cache(maxsize=None)
def power_model_for(
    core_type: CoreTypeSpec, scaling: TechScaling
) -> CorePowerModel:
    """The (cached) power model for a core type at a tech node.

    One frozen :class:`CorePowerModel` per (type, node, model) triple —
    every chip the sweep fan-out constructs shares it instead of
    re-deriving the hoisted per-level constants.
    """
    return CorePowerModel(
        table=dvfs_table_for(core_type, scaling),
        leakage_ref_w=core_type.leakage_ref_w * scaling.leakage,
    )


def _spec_fields_note() -> tuple[str, ...]:  # pragma: no cover - doc helper
    return tuple(f.name for f in fields(ChipSpec))
