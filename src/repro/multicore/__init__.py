"""Multi-core processor substrate: DVFS, power model, cores, chip."""

from repro.multicore.chip import NOMINAL_RAIL_V, MultiCoreChip
from repro.multicore.core import Core
from repro.multicore.dvfs import DVFSTable, OperatingPoint, default_dvfs_table
from repro.multicore.perf_counters import CoreProfile, profile_chip
from repro.multicore.power_model import CorePowerModel
from repro.multicore.thermal import CoreThermalModel, ThermalParameters
from repro.multicore.vrm import VRMBank, VRMParameters, VoltageRegulator

__all__ = [
    "OperatingPoint",
    "DVFSTable",
    "default_dvfs_table",
    "CorePowerModel",
    "Core",
    "MultiCoreChip",
    "NOMINAL_RAIL_V",
    "CoreProfile",
    "profile_chip",
    "VoltageRegulator",
    "VRMBank",
    "VRMParameters",
    "CoreThermalModel",
    "ThermalParameters",
]
