"""On-chip per-core voltage regulator modules (paper Section 4.1, ref [13]).

Each core's supply voltage is produced by an on-chip VRM and commanded
through a VID code (paper: Intel Xeon's 6-bit VID, 0.8375-1.6 V in 32
steps).  Two non-idealities matter to power management:

* **Conversion efficiency** — on-chip switching regulators peak around
  ~85-90 % near their design point and fall off at light load; the lost
  power is drawn from the rail but never reaches the core.
* **Transition cost** — a DVFS move takes time (VID handshake + ramp,
  Kim et al. report microseconds for on-chip regulators vs tens of
  microseconds off-chip) and wastes a small charge/discharge energy on the
  output network, bounding how often load adaptation is worth invoking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.dvfs import DVFSTable

__all__ = ["VRMParameters", "VoltageRegulator", "VRMBank"]


@dataclass(frozen=True)
class VRMParameters:
    """Electrical characteristics of one on-chip VRM.

    Attributes:
        peak_efficiency: Conversion efficiency at the design load.
        light_load_efficiency: Efficiency as load approaches zero.
        design_load_w: Load at which efficiency peaks [W].
        ramp_v_per_us: Output voltage slew rate [V/us].
        vid_latency_us: VID handshake latency per transition [us].
        transition_energy_mj_per_v: Energy dissipated per volt of output
            swing [mJ/V] (output-network charge/discharge).
    """

    peak_efficiency: float = 0.88
    light_load_efficiency: float = 0.70
    design_load_w: float = 15.0
    ramp_v_per_us: float = 0.01
    vid_latency_us: float = 0.5
    transition_energy_mj_per_v: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise ValueError(f"peak_efficiency must be in (0,1], got {self.peak_efficiency}")
        if not 0.0 < self.light_load_efficiency <= self.peak_efficiency:
            raise ValueError("light_load_efficiency must be in (0, peak]")
        if self.design_load_w <= 0:
            raise ValueError(f"design_load_w must be positive, got {self.design_load_w}")
        if self.ramp_v_per_us <= 0:
            raise ValueError(f"ramp_v_per_us must be positive, got {self.ramp_v_per_us}")


class VoltageRegulator:
    """One core's VRM: efficiency curve and transition accounting."""

    def __init__(self, table: DVFSTable, params: VRMParameters | None = None) -> None:
        self.table = table
        self.params = params or VRMParameters()
        self._transitions = 0
        self._transition_energy_j = 0.0

    @property
    def transitions(self) -> int:
        """DVFS transitions performed so far."""
        return self._transitions

    @property
    def transition_energy_j(self) -> float:
        """Cumulative energy dissipated in transitions [J]."""
        return self._transition_energy_j

    def efficiency(self, load_w: float) -> float:
        """Conversion efficiency at a given core load.

        Rises from the light-load floor toward the peak with a saturating
        (1 - exp) profile around the design load.
        """
        if load_w < 0:
            raise ValueError(f"load must be >= 0, got {load_w}")
        import math

        p = self.params
        span = p.peak_efficiency - p.light_load_efficiency
        return p.light_load_efficiency + span * (
            1.0 - math.exp(-2.0 * load_w / p.design_load_w)
        )

    def input_power(self, core_load_w: float) -> float:
        """Rail power needed to deliver ``core_load_w`` to the core [W]."""
        if core_load_w <= 0.0:
            return 0.0
        return core_load_w / self.efficiency(core_load_w)

    def transition(self, from_level: int, to_level: int) -> tuple[float, float]:
        """Perform a DVFS transition; returns (latency_us, energy_j).

        Latency covers the VID handshake plus the voltage ramp; energy is
        the output-network charge/discharge for the voltage swing.
        """
        v_from = self.table.voltage(from_level)
        v_to = self.table.voltage(to_level)
        swing = abs(v_to - v_from)
        latency_us = self.params.vid_latency_us + swing / self.params.ramp_v_per_us
        energy_j = self.params.transition_energy_mj_per_v * swing * 1e-3
        self._transitions += 1
        self._transition_energy_j += energy_j
        return latency_us, energy_j


class VRMBank:
    """The per-core VRM array of the chip (one regulator per core)."""

    def __init__(
        self,
        n_cores: int,
        table: DVFSTable,
        params: VRMParameters | None = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.regulators = [VoltageRegulator(table, params) for _ in range(n_cores)]

    def __len__(self) -> int:
        return len(self.regulators)

    def __getitem__(self, core_id: int) -> VoltageRegulator:
        return self.regulators[core_id]

    def rail_power(self, core_loads_w: list[float]) -> float:
        """Total rail power [W] to deliver the given per-core loads."""
        if len(core_loads_w) != len(self.regulators):
            raise ValueError(
                f"expected {len(self.regulators)} loads, got {len(core_loads_w)}"
            )
        return sum(
            vrm.input_power(load) for vrm, load in zip(self.regulators, core_loads_w)
        )

    @property
    def total_transitions(self) -> int:
        """Transitions across all regulators."""
        return sum(vrm.transitions for vrm in self.regulators)

    @property
    def total_transition_energy_j(self) -> float:
        """Transition energy across all regulators [J]."""
        return sum(vrm.transition_energy_j for vrm in self.regulators)

    def conversion_loss(self, core_loads_w: list[float]) -> float:
        """Power lost in conversion [W] for the given per-core loads."""
        return self.rail_power(core_loads_w) - sum(core_loads_w)
