"""Core thermal model with leakage-temperature feedback.

At 90 nm, subthreshold leakage roughly doubles every ~10-12 C of junction
temperature — and junction temperature is itself driven by power through
the package's thermal resistance.  The coupled fixed point

    T_core = T_amb + R_th * P(T_core)
    P(T)   = P_dyn + P_leak_ref * 2^((T - T_ref) / T_double)

converges quickly by iteration (the loop gain is well below 1 for sane
packages).  The model quantifies a SolarCore side benefit: running cores
at supply-matched (reduced) V/F keeps them cooler, which suppresses
leakage — a small positive feedback in favour of load matching.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThermalParameters", "CoreThermalModel"]


@dataclass(frozen=True)
class ThermalParameters:
    """Package/die thermal characteristics of one core.

    Attributes:
        r_th_c_per_w: Junction-to-ambient thermal resistance [C/W].
        t_ref_c: Temperature at which the leakage reference is specified.
        leak_doubling_c: Temperature rise that doubles leakage [C].
        t_max_c: Thermal throttle limit [C].
    """

    r_th_c_per_w: float = 1.5
    t_ref_c: float = 60.0
    leak_doubling_c: float = 11.0
    t_max_c: float = 95.0

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0:
            raise ValueError(f"r_th must be positive, got {self.r_th_c_per_w}")
        if self.leak_doubling_c <= 0:
            raise ValueError(
                f"leak_doubling_c must be positive, got {self.leak_doubling_c}"
            )


class CoreThermalModel:
    """Steady-state junction temperature and leakage for one core."""

    def __init__(self, params: ThermalParameters | None = None) -> None:
        self.params = params or ThermalParameters()

    def leakage_multiplier(self, t_core_c: float) -> float:
        """Leakage scale factor relative to the reference temperature."""
        p = self.params
        return 2.0 ** ((t_core_c - p.t_ref_c) / p.leak_doubling_c)

    def solve(
        self,
        dynamic_w: float,
        leakage_ref_w: float,
        ambient_c: float,
        tolerance: float = 1e-6,
        max_iterations: int = 100,
    ) -> tuple[float, float]:
        """Solve the coupled temperature/leakage fixed point.

        Args:
            dynamic_w: Temperature-independent (dynamic) core power [W].
            leakage_ref_w: Leakage at the reference temperature [W]
                (already voltage-scaled by the caller).
            ambient_c: Ambient (heatsink inlet) temperature [C].
            tolerance: Convergence tolerance on temperature [C].
            max_iterations: Iteration bound.

        Returns:
            ``(t_core_c, leakage_w)`` at the fixed point.

        Raises:
            RuntimeError: If the fixed point fails to converge (thermal
                runaway — loop gain >= 1).
        """
        if dynamic_w < 0 or leakage_ref_w < 0:
            raise ValueError("powers must be non-negative")
        p = self.params
        t = ambient_c + p.r_th_c_per_w * (dynamic_w + leakage_ref_w)
        try:
            for _ in range(max_iterations):
                leak = leakage_ref_w * self.leakage_multiplier(t)
                t_new = ambient_c + p.r_th_c_per_w * (dynamic_w + leak)
                if abs(t_new - t) < tolerance:
                    return t_new, leakage_ref_w * self.leakage_multiplier(t_new)
                t = t_new
        except OverflowError:
            raise RuntimeError(
                "thermal fixed point failed to converge (temperature "
                "diverged): check R_th / leakage for thermal runaway"
            ) from None
        raise RuntimeError(
            f"thermal fixed point failed to converge (last T = {t:.1f} C): "
            "check R_th / leakage for thermal runaway"
        )

    def is_throttled(self, t_core_c: float) -> bool:
        """Whether the core exceeds the thermal throttle limit."""
        return t_core_c > self.params.t_max_c
