"""The 8-core chip: aggregate power/throughput and the electrical load view.

The chip is the DC load of the direct-coupled PV system.  Its electrical
characteristic at the converter output is modeled as the effective resistance
``R = Vrail^2 / P(w)`` where ``w`` is the vector of per-core DVFS states —
raising frequencies lowers the impedance and draws more current, exactly the
load-line behaviour of the paper's Figure 5.
"""

from __future__ import annotations

import zlib

from repro.multicore.core import Core
from repro.multicore.dvfs import DVFSTable, default_dvfs_table
from repro.multicore.power_model import CorePowerModel
from repro.multicore.spec import ChipSpec, power_model_for, resolve_chip_spec
from repro.workloads.mixes import WorkloadMix

__all__ = ["MultiCoreChip", "NOMINAL_RAIL_V"]

#: Nominal PSU rail voltage feeding the processor VRMs [V] (paper Section 4.1).
NOMINAL_RAIL_V = 12.0


class MultiCoreChip:
    """An N-core chip running a multi-programmed workload mix.

    Args:
        workload: Benchmark-per-core assignment (Table 5 mix).  When the
            spec has more cores than the mix has programs, benchmarks
            wrap round-robin; with fewer cores the leading programs run.
        table: Legacy homogeneous override — a DVFS table shared by all
            cores.  Mutually exclusive with ``spec``; when given, the
            chip is one core per workload program, all the same type
            (the pre-ChipSpec constructor contract).
        leakage_ref_w: Legacy homogeneous override — per-core leakage at
            the top voltage [W].  Only meaningful with ``table``.
        uncore_power_w: Constant chip power [W] outside the cores' DVFS
            domains — L2 caches, clock distribution, I/O, and uncore
            leakage.  Drawn whenever the chip is powered; substantial at
            the paper's 90 nm node, and the reason low-power-budget
            operation is less efficient per instruction than full speed.
            ``None`` takes the spec's value.
        seed: Base seed for the per-core phase traces.
        spec: The chip description (a :class:`ChipSpec`, a spec string,
            or ``None`` for the default ``alpha8`` — the paper chip).
    """

    def __init__(
        self,
        workload: WorkloadMix,
        table: DVFSTable | None = None,
        leakage_ref_w: float | None = None,
        uncore_power_w: float | None = None,
        seed: int | None = None,
        spec: ChipSpec | str | None = None,
    ) -> None:
        legacy = table is not None or leakage_ref_w is not None
        if legacy and spec is not None:
            raise ValueError(
                "pass either a chip spec or a legacy table/leakage override, "
                "not both"
            )
        self.workload = workload
        if seed is None:
            seed = zlib.crc32(f"chip:{workload.name}".encode())
        if legacy:
            # Pre-ChipSpec contract: one shared table, one core per program.
            self.spec = None
            resolved_uncore = 45.0 if uncore_power_w is None else uncore_power_w
            shared_model = CorePowerModel(
                table=table if table is not None else default_dvfs_table(),
                leakage_ref_w=1.0 if leakage_ref_w is None else leakage_ref_w,
            )
            core_plan = [
                (bench, shared_model, 1.0, 1.0, "alpha")
                for bench in workload.benchmarks
            ]
        else:
            self.spec = resolve_chip_spec(spec)
            resolved_uncore = (
                self.spec.uncore_power_w if uncore_power_w is None
                else uncore_power_w
            )
            scaling = self.spec.scaling()
            benches = workload.benchmarks
            core_plan = [
                (
                    benches[i % len(benches)],
                    power_model_for(ct, scaling),
                    ct.epi_scale * scaling.dynamic_power,
                    ct.ipc_scale,
                    ct.name,
                )
                for i, ct in enumerate(self.spec.expand())
            ]
        if resolved_uncore < 0:
            raise ValueError(
                f"uncore_power_w must be >= 0, got {resolved_uncore}"
            )
        self.uncore_power_w = resolved_uncore
        self.cores = [
            Core(
                i, bench, model, seed=seed + i,
                epi_scale=epi_scale, ipc_scale=ipc_scale, type_name=type_name,
            )
            for i, (bench, model, epi_scale, ipc_scale, type_name)
            in enumerate(core_plan)
        ]
        self.power_model = self.cores[0].power_model
        self._homogeneous = all(
            core.power_model is self.power_model for core in self.cores
        )
        # One-entry memos for the aggregate observables, keyed on
        # (minute, state version): the controller queries them repeatedly
        # at the same frozen minute between core moves.
        self._power_memo: tuple = (None, -1, 0.0)
        self._throughput_memo: tuple = (None, -1, 0.0)

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return len(self.cores)

    @property
    def homogeneous(self) -> bool:
        """True when every core shares one power model (and DVFS table)."""
        return self._homogeneous

    @property
    def table(self) -> DVFSTable:
        """The shared DVFS table — only defined for homogeneous chips.

        Heterogeneous callers must use ``core.table`` per core (or the
        :meth:`set_all_min` / :meth:`set_all_max` helpers).
        """
        if not self._homogeneous:
            raise ValueError(
                "heterogeneous chip has no single shared DVFS table; "
                "use per-core tables"
            )
        return self.power_model.table

    @property
    def levels(self) -> tuple[int, ...]:
        """Current per-core DVFS levels."""
        return tuple(core.level for core in self.cores)

    def set_levels(self, levels: tuple[int, ...] | list[int]) -> None:
        """Set every core's DVFS level at once."""
        if len(levels) != self.n_cores:
            raise ValueError(
                f"expected {self.n_cores} levels, got {len(levels)}"
            )
        for core, level in zip(self.cores, levels):
            core.set_level(level)

    def set_all_levels(self, level: int) -> None:
        """Set every core to the same DVFS level."""
        for core in self.cores:
            core.set_level(level)

    def set_all_min(self) -> None:
        """Drop every core to its own table's bottom level.

        The heterogeneity-safe spelling of
        ``set_all_levels(table.min_level)`` — per-core tables may have
        different depths.
        """
        for core in self.cores:
            core.set_level(core.table.min_level)

    def set_all_max(self) -> None:
        """Raise every core to its own table's top level."""
        for core in self.cores:
            core.set_level(core.table.max_level)

    # ------------------------------------------------------------------
    # Aggregate observables
    # ------------------------------------------------------------------
    def _state_version(self) -> int:
        """Monotone chip-state token: strictly increases on any core's
        level/gating change, so ``(minute, version)`` keys stay valid."""
        version = 0
        for core in self.cores:
            version += core._version
        return version

    def total_power_at(self, minute: float) -> float:
        """Chip power [W] at a time instant (cores + uncore)."""
        version = self._state_version()
        memo = self._power_memo
        if memo[0] == minute and memo[1] == version:
            return memo[2]
        value = self.uncore_power_w + sum(
            core.power_at(minute) for core in self.cores
        )
        self._power_memo = (minute, version, value)
        return value

    def total_throughput_at(self, minute: float) -> float:
        """Chip throughput [GIPS] at a time instant."""
        version = self._state_version()
        memo = self._throughput_memo
        if memo[0] == minute and memo[1] == version:
            return memo[2]
        value = sum(core.throughput_at(minute) for core in self.cores)
        self._throughput_memo = (minute, version, value)
        return value

    def min_power_at(self, minute: float) -> float:
        """Chip power [W] with every active core at the lowest level.

        This is the floor the load can reach without power gating — the
        reference for the direct-coupled system's power-transfer threshold.
        """
        return self.uncore_power_w + sum(
            core.power_at_level(core.table.min_level, minute)
            for core in self.cores
            if not core.gated
        )

    def floor_power_at(self, minute: float, with_gating: bool = True) -> float:
        """The minimum sustainable chip power [W].

        With per-core power gating (PCPG) the floor is a single core — the
        cheapest one — at the bottom DVFS level; without gating it is every
        core at the bottom level (:meth:`min_power_at`).
        """
        if not with_gating:
            return self.min_power_at(minute)
        return self.uncore_power_w + min(
            core.power_at_level(core.table.min_level, minute) for core in self.cores
        )

    def active_cores(self) -> list[Core]:
        """The cores that are not power-gated."""
        return [core for core in self.cores if not core.gated]

    def ungate_all(self) -> None:
        """Bring every core back online (levels are preserved)."""
        for core in self.cores:
            core.ungate()

    def max_power_at(self, minute: float) -> float:
        """Chip power [W] with every active core at the highest level."""
        return self.uncore_power_w + sum(
            core.power_at_level(core.table.max_level, minute)
            for core in self.cores
            if not core.gated
        )

    # ------------------------------------------------------------------
    # Electrical load view
    # ------------------------------------------------------------------
    def effective_resistance(self, minute: float, rail_v: float = NOMINAL_RAIL_V) -> float:
        """DC resistance [ohm] the chip presents at the converter output.

        ``R = Vrail^2 / P``; returns ``inf`` if the chip draws no power
        (all cores gated).
        """
        if rail_v <= 0:
            raise ValueError(f"rail_v must be positive, got {rail_v}")
        power = self.total_power_at(minute)
        if power <= 0.0:
            return float("inf")
        return rail_v * rail_v / power

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    def advance(self, minute: float, dt_minutes: float) -> float:
        """Retire instructions on every core over ``[minute, minute + dt)``.

        Returns total giga-instructions retired in the interval.
        """
        return sum(core.advance(minute, dt_minutes) for core in self.cores)

    @property
    def retired_ginst(self) -> float:
        """Total giga-instructions retired by all cores so far."""
        return sum(core.retired_ginst for core in self.cores)

    @property
    def total_transitions(self) -> int:
        """DVFS transitions performed across all cores."""
        return sum(core.transitions for core in self.cores)

    @property
    def total_transition_volts(self) -> float:
        """Cumulative DVFS voltage swing across all cores [V]."""
        return sum(core.transition_volts for core in self.cores)
