"""Command-line interface: ``python -m repro <command> ...``.

Commands:

    list        show stations, workload mixes, and policies
    panel       characterize the BP3180N panel at a condition
    trace       summarize a synthetic weather day
    simulate    run one day under a policy (or fixed budget / battery)
    rack        simulate a rack of chips on a shared solar farm
    campaign    multi-realization campaign with carbon accounting
    experiment  regenerate one of the paper's figures/tables
    profile     run day simulations with the hot-path profiler armed
    runs        list/show/diff recorded run manifests
    serve       long-running job server with live telemetry streaming

Observability flags (available on every command):

    --log-level LEVEL   stdlib logging threshold for the repro package
    --trace FILE        write a JSONL telemetry trace of structured events
    --telemetry         enable metrics/spans without writing a trace file
    --profile           arm the hot-path profiler and print the phase report
    --ledger            record a provenance manifest under --runs-dir

With ``--trace`` or ``--telemetry``, ``simulate``/``rack``/``campaign``/
``experiment`` print a post-run summary of counters, histograms, and span
timings.  Example::

    repro simulate --mix mixed --location PFCI --month 6 --trace /tmp/t.jsonl

``campaign`` and ``experiment`` additionally accept the parallel-sweep
flags: ``--jobs N`` fans the day-simulation grid out across N worker
processes, and ``--cache-dir DIR`` persists every result to a
content-addressed disk cache (reused across runs, invalidated whenever
the ``repro`` source changes)::

    repro experiment fig18 --jobs 4 --cache-dir ~/.cache/solarcore

Resilience flags (same commands): ``--retries N`` re-runs failed sweep
tasks with exponential backoff, ``--task-timeout S`` bounds each task,
and ``--checkpoint FILE`` + ``--resume`` make long campaigns crash-safe.
``simulate``/``rack``/``campaign`` accept ``--faults SPEC`` to inject a
deterministic fault schedule (see ``repro.faults``)::

    repro campaign --sites AZ TN --months 1 7 --jobs 4 \\
        --faults 'sensor_dropout@600-660,seed=7' \\
        --checkpoint /tmp/campaign.ckpt --resume

Performance observability: ``repro profile`` (or ``--profile`` on any
simulating command) attributes wall-time to engine phases and counts
``brentq`` solver work; ``--ledger`` records an atomic provenance
manifest (config key, code fingerprint, cache tier counts, host info)
that ``repro runs list|show|diff`` reads back::

    repro profile --mix HM2 --site AZ --month 7
    repro experiment fig18 --jobs 4 --ledger
    repro runs diff 20260808-120000-experiment 20260808-130000-experiment

``repro serve`` turns the harness into a long-running service: jobs are
POSTed as JSON to ``/jobs`` (the ``SweepTask`` config surface, including
``solver`` and ``faults``), identical concurrent requests coalesce onto
one compute, and ``/ws/telemetry`` streams live events and metric
snapshots over WebSocket.  With ``--ledger``, every terminal job records
a provenance manifest under ``--runs-dir``::

    repro serve --port 8321 --cache-dir ~/.cache/solarcore --ledger
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

#: Commands that print a telemetry summary table after running.
_SUMMARY_COMMANDS = frozenset({"simulate", "rack", "campaign", "experiment",
                               "profile"})

#: Commands that run simulations and may record a provenance manifest.
_LEDGER_COMMANDS = _SUMMARY_COMMANDS


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.core.load_tuning import TUNER_NAMES
    from repro.environment.locations import ALL_LOCATIONS
    from repro.workloads.mixes import ALL_MIX_NAMES, mix

    print("stations:")
    for loc in ALL_LOCATIONS:
        print(f"  {loc.code:5s} {loc.name:22s} {loc.potential}")
    print("\nworkload mixes:")
    for name in ALL_MIX_NAMES:
        benches = ", ".join(b.name for b in mix(name).benchmarks)
        print(f"  {name:4s} {benches}")
    print("\npolicies:")
    for name in TUNER_NAMES:
        print(f"  {name}")
    print("  Fixed-<watts>  (via simulate --fixed-budget)")
    print("  Battery        (via simulate --battery-derating)")
    print("\nchip presets (--chip; custom mixes via the spec grammar):")
    from repro.multicore.spec import CHIP_PRESETS

    for name, spec in CHIP_PRESETS.items():
        print(f"  {spec.describe()}")
    return 0


def _cmd_panel(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.harness.reporting import format_table, sparkline
    from repro.pv.curves import sample_iv_curve
    from repro.pv.module import PVModule
    from repro.pv.mpp import find_mpp
    from repro.pv.params import bp3180n

    if args.shading:
        from repro.pv.shading import ShadedSeriesString, find_global_mpp

        factors = tuple(float(f) for f in args.shading.split(","))
        string = ShadedSeriesString(factors)
        mpp = find_global_mpp(string, args.irradiance, args.temperature)
        voc = string.open_circuit_voltage(args.irradiance, args.temperature)
        voltages = np.linspace(1e-3, voc * 0.999, 120)
        powers = [
            string.power(float(v), args.irradiance, args.temperature)
            for v in voltages
        ]
        print(f"{len(factors)}-module string, shading {factors}, "
              f"G={args.irradiance:.0f} W/m^2, T={args.temperature:.0f} C")
        print(f"global MPP {mpp.power:.1f} W at {mpp.voltage:.1f} V "
              f"(Voc {voc:.1f} V)")
        print(f"P-V |{sparkline(powers)}|")
        return 0

    module = PVModule(bp3180n())
    curve = sample_iv_curve(module, args.irradiance, args.temperature, 150)
    mpp = find_mpp(module, args.irradiance, args.temperature)
    print(f"{module.params.name} at G={args.irradiance:.0f} W/m^2, "
          f"T={args.temperature:.0f} C")
    print(format_table(
        ["quantity", "value"],
        [
            ["Isc", f"{curve.isc:.2f} A"],
            ["Voc", f"{curve.voc:.2f} V"],
            ["Vmpp", f"{mpp.voltage:.2f} V"],
            ["Impp", f"{mpp.current:.2f} A"],
            ["Pmax", f"{mpp.power:.1f} W"],
        ],
    ))
    print(f"P-V |{sparkline(curve.power)}|")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.environment.irradiance import generate_trace
    from repro.environment.locations import location_by_code
    from repro.harness.reporting import sparkline

    location = location_by_code(args.site)
    trace = generate_trace(location, args.month, seed=args.seed)
    print(f"{location.name}, month {args.month} ({trace.label})")
    print(f"  insolation {trace.daily_insolation_kwh_m2():.2f} kWh/m^2 "
          f"(daytime window), peak {trace.peak_irradiance():.0f} W/m^2")
    print(f"  G(t) |{sparkline(trace.irradiance)}|")
    print(f"  T(t) {trace.ambient_c.min():.1f} .. {trace.ambient_c.max():.1f} C")
    return 0


def _solver_config(args: argparse.Namespace):
    """The :class:`SolarCoreConfig` the command's flags ask for."""
    from repro.core.config import SolarCoreConfig

    return SolarCoreConfig(
        solver=getattr(args, "solver", "exact"),
        chip_spec=getattr(args, "chip", "alpha8"),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.simulation import run_day, run_day_battery, run_day_fixed
    from repro.environment.locations import location_by_code

    config = _solver_config(args)
    location = location_by_code(args.site)
    if args.battery_derating is not None:
        day = run_day_battery(
            args.mix, location, args.month, args.battery_derating,
            config=config, faults=args.faults,
        )
        print(f"battery system (derating {day.derating:.0%}) "
              f"{day.mix_name} @ {day.location_code} m{day.month}")
        print(f"  harvested {day.harvested_wh:.0f} Wh, "
              f"full-speed runtime {day.runtime_minutes:.0f} min, "
              f"PTP {day.ptp:.0f} Ginst")
        return 0

    if args.fixed_budget is not None:
        day = run_day_fixed(
            args.mix, location, args.month, args.fixed_budget,
            config=config, faults=args.faults,
        )
    else:
        day = run_day(args.mix, location, args.month, args.policy,
                      config=config, faults=args.faults)
    if args.export_csv:
        from repro.harness.export import day_to_csv

        day_to_csv(day, args.export_csv)
        print(f"wrote {args.export_csv}")
    if args.export_json:
        from repro.harness.export import day_to_json

        day_to_json(day, args.export_json)
        print(f"wrote {args.export_json}")
    print(f"{day.policy} {day.mix_name} @ {day.location_code} m{day.month}")
    print(f"  solar available   {day.solar_available_wh:8.1f} Wh")
    print(f"  solar consumed    {day.solar_used_wh:8.1f} Wh "
          f"({day.energy_utilization:.1%} utilization)")
    print(f"  utility backup    {day.utility_wh:8.1f} Wh")
    print(f"  solar duration    {day.effective_duration_fraction:8.1%}")
    print(f"  tracking error    {day.mean_tracking_error:8.1%}")
    print(f"  tracking_events   {day.tracking_events:8d}")
    print(f"  dvfs transitions  {day.dvfs_transitions:8d}")
    print(f"  PTP               {day.ptp:8.0f} Ginst")
    return 0


def _sweep_runner(args: argparse.Namespace):
    """The parallel/caching/resilient runner the sweep flags ask for, or None.

    A non-default ``--solver`` or ``--chip`` also forces a runner: the
    experiment functions fall back to the module-level default runner
    otherwise, which is pinned to the exact-solver default-chip config.
    """
    if args.resume and args.checkpoint is None:
        raise SystemExit("error: --resume requires --checkpoint FILE")
    config = _solver_config(args)
    wants_runner = (
        args.jobs > 1
        or args.cache_dir is not None
        or args.retries > 0
        or args.task_timeout is not None
        or args.checkpoint is not None
        or config.solver != "exact"
        or config.chip_spec != "alpha8"
    )
    if not wants_runner:
        return None
    from repro.harness.runner import SimulationRunner

    checkpoint = None
    if args.checkpoint is not None:
        from repro.harness.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(args.checkpoint, config)
        if args.resume:
            restored = checkpoint.load()
            print(f"resumed {restored} completed task(s) from {args.checkpoint}")
    return SimulationRunner(
        config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        task_timeout=args.task_timeout,
        checkpoint=checkpoint,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core.campaign import run_campaign
    from repro.environment.locations import location_by_code
    from repro.harness.reporting import format_table

    locations = [location_by_code(code) for code in args.sites]
    campaign = run_campaign(
        args.mix, locations, tuple(args.months),
        days_per_cell=args.days, policy=args.policy,
        config=_solver_config(args),
        runner=_sweep_runner(args),
        faults=args.faults,
    )
    rows = []
    for cell in campaign.cells:
        rows.append([
            cell.location_code,
            str(cell.month),
            f"{cell.mean('energy_utilization'):.1%}"
            f" ± {cell.std('energy_utilization'):.1%}",
            f"{cell.mean('effective_duration_fraction'):.1%}",
            f"{cell.mean('ptp'):,.0f}",
        ])
    print(format_table(
        ["site", "month", "utilization", "solar duration", "mean PTP (Ginst)"],
        rows,
    ))
    carbon = campaign.carbon()
    print(f"\noverall utilization {campaign.overall_utilization:.1%} "
          f"over {len(campaign.all_days)} simulated days")
    print(f"carbon: {carbon.avoided_kg:.2f} kg CO2 avoided, "
          f"{carbon.emitted_kg:.2f} kg emitted "
          f"({carbon.reduction_fraction:.0%} footprint reduction)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run day simulation(s) purely to profile them.

    The profiler itself is armed by :func:`main` (the ``profile`` command
    always installs a hub with a
    :class:`~repro.telemetry.profiling.PhaseProfiler`); this handler just
    runs the requested days and prints the headline result — the phase
    report follows from the shared summary path.
    """
    from repro.core.simulation import run_day
    from repro.environment.locations import location_by_code

    config = _solver_config(args)
    location = location_by_code(args.site)
    day = None
    for _ in range(args.repeat):
        day = run_day(args.mix, location, args.month, args.policy,
                      config=config, faults=args.faults)
    print(f"profiled {args.repeat} x {day.policy} {day.mix_name} "
          f"@ {day.location_code} m{day.month} (PTP {day.ptp:.0f} Ginst)")
    if config.solver == "table":
        from repro.power.surface import get_surfaces
        from repro.pv.array import PVArray

        surfaces = get_surfaces(PVArray())
        if surfaces is not None:
            print("\nsurface error contract:")
            print(surfaces.report())
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.harness.runledger import (
        RunLedger,
        diff_manifests,
        render_manifest,
        render_run_list,
    )

    ledger = RunLedger(args.runs_dir)
    try:
        if args.runs_command == "list":
            ids = ledger.run_ids()
            if not ids:
                print(f"no runs recorded under {ledger.root}")
                return 0
            print(render_run_list([ledger.load(run_id) for run_id in ids]))
        elif args.runs_command == "show":
            run_id = args.run
            if run_id is None:
                ids = ledger.run_ids()
                if not ids:
                    print(f"no runs recorded under {ledger.root}",
                          file=sys.stderr)
                    return 2
                run_id = ids[-1]
            print(render_manifest(ledger.load(run_id)))
        else:  # diff
            print(diff_manifests(ledger.load(args.run_a), ledger.load(args.run_b)))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


_EXPERIMENTS = {
    "fig01": "fig01",
    "table7": "table7",
    "fig18": "fig18",
    "fig19": "fig19",
    "fig21": "fig21",
}


#: Per-experiment grid subsets the parallel engine prefetches
#: (keyword overrides for ``experiments.standard_grid_tasks``).
_EXPERIMENT_GRIDS = {
    "table7": dict(policies=("MPPT&Opt",), budgets_w=(), deratings=()),
    "fig18": dict(budgets_w=(), deratings=()),
    "fig19": dict(mixes=("HM2",), policies=("MPPT&Opt",), budgets_w=(),
                  deratings=()),
    "fig21": dict(budgets_w=()),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import experiments, reporting

    name = args.name.lower()
    runner = _sweep_runner(args)
    if runner is not None and name in _EXPERIMENT_GRIDS:
        experiments.prefetch_standard_grid(runner, **_EXPERIMENT_GRIDS[name])
    if name == "fig01":
        rows = experiments.fig01_fixed_load_utilization()
        print(reporting.format_table(
            ["irradiance", "utilization"],
            [[f"{g:.0f}", f"{u:.1%}"] for g, u in rows],
        ))
    elif name == "table7":
        table = experiments.table7_tracking_error(runner=runner)
        print(reporting.render_table7(table))
    elif name == "fig18":
        data = experiments.fig18_energy_utilization(runner=runner)
        print(reporting.render_fig18(data, experiments.BATTERY_BOUNDS))
    elif name == "fig19":
        durations = experiments.fig19_effective_duration(runner=runner)
        rows = [
            [site, str(month), f"{frac:.1%}"]
            for (site, month), frac in sorted(durations.items())
        ]
        print(reporting.format_table(["site", "month", "solar duration"], rows))
    elif name == "fig21":
        data = experiments.fig21_normalized_ptp(runner=runner)
        print(reporting.render_fig21_summary(data))
    else:
        print(f"unknown experiment {args.name!r}; "
              f"known: {', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SolarCore (HPCA 2011) reproduction toolkit",
    )

    # Observability flags shared by every subcommand, e.g.
    #   repro simulate --mix mixed --location PFCI --month 6 --trace t.jsonl
    common = argparse.ArgumentParser(add_help=False)
    obs = common.add_argument_group("observability")
    obs.add_argument("--log-level", default=None,
                     metavar="LEVEL",
                     help="stdlib logging threshold for the repro package "
                          "(debug/info/warning/error)")
    obs.add_argument("--trace", default=None, metavar="FILE",
                     help="write structured telemetry events to FILE as JSONL "
                          "(implies --telemetry)")
    obs.add_argument("--telemetry", action="store_true",
                     help="collect metrics/spans and print a post-run summary")
    obs.add_argument("--profile", action="store_true",
                     help="arm the hot-path profiler and print the per-phase "
                          "wall-time report after the run")
    obs.add_argument("--ledger", action="store_true",
                     help="record an atomic run-provenance manifest under "
                          "--runs-dir after the run")
    obs.add_argument("--runs-dir", default="runs", metavar="DIR",
                     help="directory for run manifests (default: runs/)")

    # Parallel-sweep flags for the grid-shaped commands, e.g.
    #   repro experiment fig18 --jobs 4 --cache-dir ~/.cache/solarcore
    sweep = argparse.ArgumentParser(add_help=False)
    par = sweep.add_argument_group("parallel sweep")
    par.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan day simulations out over N worker processes")
    par.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persist day results to a content-addressed disk "
                          "cache under DIR (reused across runs; invalidated "
                          "when the repro source changes)")
    res = sweep.add_argument_group("resilience")
    res.add_argument("--retries", type=int, default=0, metavar="N",
                     help="retry failed sweep tasks up to N more times "
                          "(exponential backoff, fresh workers)")
    res.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-task wall-clock budget for parallel sweeps; "
                          "tasks over budget are failed and retried")
    res.add_argument("--checkpoint", default=None, metavar="FILE",
                     help="periodically record completed sweep cells to FILE "
                          "(atomic snapshots; see --resume)")
    res.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint FILE: completed cells "
                          "are skipped, only the remainder is computed")

    # Electrical solver choice for the simulating commands, e.g.
    #   repro campaign --sites AZ TN --solver table
    solver = argparse.ArgumentParser(add_help=False)
    eng = solver.add_argument_group("electrical solver")
    eng.add_argument("--solver", choices=["exact", "table"], default="exact",
                     help="exact: Lambert-W/brentq per step (bit-reproducible "
                          "reference); table: precomputed interpolation "
                          "surfaces + batched day engine (10x+ faster, "
                          "accuracy per the declared error bound)")

    # Chip model choice for the simulating commands, e.g.
    #   repro simulate --site AZ --month 7 --chip biglittle
    #   repro campaign --sites AZ --chip 'big*4+little*4@45nm:cons'
    chip = argparse.ArgumentParser(add_help=False)
    chp = chip.add_argument_group("chip model")
    chp.add_argument("--chip", default="alpha8",
                     help="chip spec: a preset (alpha8, biglittle, hetero3, "
                          "little8) or the mix grammar "
                          "'type*count+...@<node>nm:<model>[;uncore=W]' "
                          "(default: alpha8, the paper's homogeneous chip)")

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show stations, mixes, and policies",
                   parents=[common])

    panel = sub.add_parser("panel", help="characterize the BP3180N panel",
                           parents=[common])
    panel.add_argument("--irradiance", type=float, default=1000.0)
    panel.add_argument("--temperature", type=float, default=25.0)
    panel.add_argument("--shading", default=None,
                       help="comma-separated per-module factors, e.g. 1.0,0.4")

    trace = sub.add_parser("trace", help="summarize a synthetic weather day",
                           parents=[common])
    trace.add_argument("--site", "--location", dest="site", default="AZ")
    trace.add_argument("--month", type=int, default=7)
    trace.add_argument("--seed", type=int, default=None)

    simulate = sub.add_parser("simulate", help="run one day simulation",
                              parents=[common, solver, chip])
    simulate.add_argument("--mix", default="HM2")
    simulate.add_argument("--site", "--location", dest="site", default="AZ",
                          help="station code (PFCI/BMS/ECSU/ORNL or AZ/CO/NC/TN)")
    simulate.add_argument("--month", type=int, default=7)
    simulate.add_argument("--policy", default="MPPT&Opt")
    simulate.add_argument("--fixed-budget", type=float, default=None,
                          help="run the Fixed-Power baseline at this budget [W]")
    simulate.add_argument("--battery-derating", type=float, default=None,
                          help="run the battery baseline at this de-rating")
    simulate.add_argument("--export-csv", default=None,
                          help="write the day's time series to a CSV file")
    simulate.add_argument("--export-json", default=None,
                          help="write series + metrics to a JSON file")
    simulate.add_argument("--faults", default=None, metavar="SPEC",
                          help="inject a fault schedule, e.g. "
                               "'sensor_dropout@600-660,conv_eff@400-:0.85'")

    rack = sub.add_parser("rack", help="simulate a rack on a shared farm",
                          parents=[common, solver, chip])
    rack.add_argument("--mixes", nargs="+", default=["H1", "L1", "HM2", "ML2"])
    rack.add_argument("--site", "--location", dest="site", default="AZ")
    rack.add_argument("--month", type=int, default=7)
    rack.add_argument("--policy", default="tpr",
                      choices=["equal", "proportional", "tpr"])
    rack.add_argument("--faults", default=None, metavar="SPEC",
                      help="inject a fault schedule into the shared farm")

    campaign = sub.add_parser("campaign", help="multi-day campaign + carbon",
                              parents=[common, sweep, solver, chip])
    campaign.add_argument("--mix", default="HM2")
    campaign.add_argument("--sites", "--locations", dest="sites", nargs="+",
                          default=["AZ", "TN"])
    campaign.add_argument("--months", nargs="+", type=int, default=[1, 7])
    campaign.add_argument("--days", type=int, default=3)
    campaign.add_argument("--policy", default="MPPT&Opt")
    campaign.add_argument("--faults", default=None, metavar="SPEC",
                          help="apply a fault schedule to every campaign day")

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact",
                                parents=[common, sweep, solver, chip])
    experiment.add_argument("name", help=f"one of: {', '.join(sorted(_EXPERIMENTS))}")

    profile = sub.add_parser(
        "profile", help="profile day simulations (phase wall-time + solver work)",
        parents=[common, solver, chip])
    profile.add_argument("--mix", default="HM2")
    profile.add_argument("--site", "--location", dest="site", default="AZ")
    profile.add_argument("--month", type=int, default=7)
    profile.add_argument("--policy", default="MPPT&Opt")
    profile.add_argument("--repeat", type=int, default=1, metavar="N",
                         help="profile N identical days (steadier shares)")
    profile.add_argument("--faults", default=None, metavar="SPEC",
                         help="inject a fault schedule into the profiled day")

    runs = sub.add_parser("runs", help="inspect recorded run manifests",
                          parents=[common])
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    # Each sub-subcommand re-parents [common] so flags like --runs-dir
    # work both before and after it (`runs list --runs-dir X`).
    runs_sub.add_parser("list", help="one line per recorded run",
                        parents=[common])
    runs_show = runs_sub.add_parser("show", help="full manifest of one run",
                                    parents=[common])
    runs_show.add_argument("run", nargs="?", default=None,
                           help="run id (default: most recent)")
    runs_diff = runs_sub.add_parser("diff", help="compare two runs field by field",
                                    parents=[common])
    runs_diff.add_argument("run_a")
    runs_diff.add_argument("run_b")

    serve = sub.add_parser(
        "serve", help="run the async job server (HTTP + WebSocket)",
        parents=[common, solver, chip])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port; 0 picks an ephemeral port")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared persistent result cache for every job")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes per runner for grid prefetches")
    serve.add_argument("--max-workers", type=int, default=4, metavar="N",
                       help="compute threads multiplexing jobs (default: 4)")
    serve.add_argument("--queue-size", type=int, default=256, metavar="N",
                       help="per-WebSocket-client bounded queue capacity "
                            "(oldest messages drop when a client is slow)")
    serve.add_argument("--snapshot-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="telemetry snapshot cadence on /ws/telemetry "
                            "(0 disables snapshots)")
    serve.add_argument("--max-queue", type=int, default=0, metavar="N",
                       help="bounded admission: reject submissions with 429 "
                            "once N jobs are live (0 = unbounded)")
    serve.add_argument("--journal-dir", default=None, metavar="DIR",
                       help="crash-safe job journal: acknowledged jobs are "
                            "fsynced here and replayed on restart")
    serve.add_argument("--recover", choices=("retry", "fail"), default="retry",
                       help="what replay does with jobs the dead process was "
                            "running: re-enqueue them (retry, default) or "
                            "fail them (fail)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="SIGTERM/SIGINT grace: wait this long for "
                            "in-flight jobs before journaling them as "
                            "interrupted (default: 10)")
    serve.add_argument("--lease-stale", type=float, default=30.0,
                       metavar="SECONDS",
                       help="cross-process compute lease heartbeat timeout "
                            "(with --cache-dir, N servers on one cache dir "
                            "compute each key once; 0 disables leases)")

    return parser


def _cmd_rack(args: argparse.Namespace) -> int:
    from repro.environment.locations import location_by_code
    from repro.rack import run_day_rack

    location = location_by_code(args.site)
    day = run_day_rack(tuple(args.mixes), location, args.month, args.policy,
                       config=_solver_config(args), faults=args.faults)
    print(f"rack [{', '.join(day.mix_names)}] @ {day.location_code} "
          f"m{day.month}, division={day.policy}")
    print(f"  rack PTP          {day.total_ptp:10.0f} Ginst")
    print(f"  energy utilization {day.energy_utilization:9.1%}")
    print(f"  solar duration    {day.effective_duration_fraction:10.1%}")
    for name, ginst in zip(day.mix_names, day.retired_ginst):
        print(f"  chip {name:4s} {ginst:10.0f} Ginst")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.app import SolarCoreService

    service = SolarCoreService(
        _solver_config(args),
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        sweep_jobs=args.jobs,
        max_workers=args.max_workers,
        client_queue_size=args.queue_size,
        snapshot_interval_s=args.snapshot_interval,
        runs_dir=args.runs_dir if args.ledger else None,
        max_queue=args.max_queue or None,
        journal_dir=args.journal_dir,
        recover=args.recover,
        drain_timeout_s=args.drain_timeout,
        lease_stale_s=args.lease_stale or None,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop: Ctrl-C falls back to KeyboardInterrupt
        await service.start()
        print(f"solarcore service on http://{service.host}:{service.port}  "
              f"(POST /jobs, GET /stats, WS /ws/telemetry; Ctrl-C stops)",
              flush=True)
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if stop.is_set():
                print("\ndraining (waiting for in-flight jobs) ...", flush=True)
                report = await service.drain()
                print(f"drain: {report}", flush=True)
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            await service.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("service stopped", flush=True)
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "panel": _cmd_panel,
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "campaign": _cmd_campaign,
    "experiment": _cmd_experiment,
    "rack": _cmd_rack,
    "profile": _cmd_profile,
    "runs": _cmd_runs,
    "serve": _cmd_serve,
}


def _record_run(args: argparse.Namespace, argv, hub, duration_s: float) -> None:
    """Write the --ledger provenance manifest for a finished command."""
    from repro.harness.runledger import RunLedger, build_manifest

    full_argv = list(argv) if argv is not None else sys.argv[1:]
    if full_argv and full_argv[0] == args.command:
        full_argv = full_argv[1:]  # the command renders separately
    manifest = build_manifest(
        args.command,
        full_argv,
        config=_solver_config(args),
        faults=getattr(args, "faults", None),
        jobs=getattr(args, "jobs", None),
        duration_s=duration_s,
        telemetry=hub,
    )
    path = RunLedger(args.runs_dir).record(manifest)
    print(f"recorded run manifest {path}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.log_level is not None:
        from repro.telemetry import configure_logging

        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # The profile command always arms the profiler; --ledger needs a hub
    # to have counters worth recording, even without --telemetry.
    profiling = getattr(args, "profile", False) or args.command == "profile"
    ledgering = getattr(args, "ledger", False) and args.command in _LEDGER_COMMANDS
    if not (args.trace or args.telemetry or profiling or ledgering):
        return _HANDLERS[args.command](args)

    # Telemetry requested: install a hub for the duration of the command,
    # stream events to the JSONL trace if asked, and print the summary.
    import time as _time

    from repro import telemetry

    hub = telemetry.Telemetry(
        profiler=telemetry.PhaseProfiler() if profiling else None
    )
    if args.trace:
        try:
            hub.add_sink(telemetry.JsonlSink(args.trace))
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 2
    previous = telemetry.set_telemetry(hub)
    start = _time.perf_counter()
    try:
        code = _HANDLERS[args.command](args)
    finally:
        duration_s = _time.perf_counter() - start
        telemetry.set_telemetry(previous)
        hub.close()
    if args.trace:
        print(f"wrote telemetry trace {args.trace}")
    if (args.trace or args.telemetry) and args.command in _SUMMARY_COMMANDS:
        summary = telemetry.render_summary(hub)
        if summary:
            print(f"\n{summary}")
    if profiling:
        report = telemetry.render_profile(hub.profile)
        if report:
            print(f"\n{report}")
        else:
            print("\n(no phases profiled — the command ran no day simulations)")
    if ledgering and code == 0:
        _record_run(args, argv, hub, duration_s)
    return code
