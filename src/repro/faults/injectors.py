"""Fault-injecting wrappers around the power-path components.

Each wrapper holds a reference to the run's
:class:`~repro.faults.scheduler.FaultScheduler` and consults it on every
call, so a component misbehaves exactly inside its scheduled windows and
is bit-identical to the pristine component outside them.  The wrappers
are installed by the ``*_day_engine`` factories *before* the policy and
engine are built, so every reference (engine MPP solve, controller
operating-point solves, sensor reads) sees the same faulted view.
"""

from __future__ import annotations

import numpy as np

from repro.faults.scheduler import FaultScheduler
from repro.power.converter import DCDCConverter
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.power.sensors import IVSensor, SensorDropout, SensorReading

__all__ = ["FaultyArray", "FaultySensor", "FaultyConverter", "FaultyATS"]


class FaultyArray:
    """A PV generator with scheduled string failures.

    During a ``pv_string`` window a fraction of the parallel strings
    stops delivering: output *current* scales by the surviving fraction
    while the open-circuit *voltage* is unchanged (the remaining strings
    still hold the terminal voltage).  Soiling is an irradiance effect
    and is applied upstream by the scheduler, not here.
    """

    def __init__(self, inner, scheduler: FaultScheduler) -> None:
        self._inner = inner
        self._scheduler = scheduler

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def current(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        return (
            self._inner.current(voltage, irradiance, cell_temp_c)
            * self._scheduler.pv_current_factor()
        )

    def currents(
        self, voltages: np.ndarray, irradiance: float, cell_temp_c: float
    ) -> np.ndarray:
        return (
            self._inner.currents(voltages, irradiance, cell_temp_c)
            * self._scheduler.pv_current_factor()
        )

    def voltage(self, current: float, irradiance: float, cell_temp_c: float) -> float:
        factor = self._scheduler.pv_current_factor()
        return self._inner.voltage(current / factor, irradiance, cell_temp_c)

    def power(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        return voltage * self.current(voltage, irradiance, cell_temp_c)

    def short_circuit_current(self, irradiance: float, cell_temp_c: float) -> float:
        return self.current(0.0, irradiance, cell_temp_c)

    def open_circuit_voltage(self, irradiance: float, cell_temp_c: float) -> float:
        return self._inner.open_circuit_voltage(irradiance, cell_temp_c)

    def cell_temperature_from_ambient(
        self, irradiance: float, ambient_c: float
    ) -> float:
        return self._inner.cell_temperature_from_ambient(irradiance, ambient_c)


class FaultySensor:
    """An I/V sensor pair subject to scheduled imperfections.

    * ``sensor_dropout`` — :meth:`read` raises :class:`SensorDropout`.
    * ``sensor_stuck`` — the last reported reading is repeated verbatim.
    * ``sensor_bias`` — a multiplicative bias drifting at ``param``/min
      since the window opened.
    * ``sensor_noise`` — extra multiplicative Gaussian noise of sigma
      ``param`` drawn from the schedule-seeded RNG (independent draws
      for voltage and current).
    """

    def __init__(self, inner: IVSensor, scheduler: FaultScheduler) -> None:
        self._inner = inner
        self._scheduler = scheduler
        self._held: SensorReading | None = None

    def read(self, point) -> SensorReading:
        sched = self._scheduler
        if sched.active("sensor_dropout") is not None:
            raise SensorDropout(
                f"sensor dropout active at minute {sched.now:g}"
            )
        if sched.active("sensor_stuck") is not None and self._held is not None:
            return self._held
        reading = self._inner.read(point)
        bias = sched.active("sensor_bias")
        if bias is not None:
            factor = 1.0 + bias.param * (sched.now - bias.start_min)
            reading = SensorReading(
                voltage=reading.voltage * factor,
                current=reading.current * factor,
            )
        noise = sched.active("sensor_noise")
        if noise is not None:
            dv, di = sched.rng.normal(0.0, noise.param, size=2)
            reading = SensorReading(
                voltage=reading.voltage * (1.0 + float(dv)),
                current=reading.current * (1.0 + float(di)),
            )
        self._held = reading
        return reading


class FaultyConverter(DCDCConverter):
    """A DC/DC stage with scheduled efficiency loss and a sticky knob.

    * ``conv_eff`` — :meth:`effective_efficiency` is derated by the
      window's factor (every electrical relation reads through it).
    * ``k_stuck`` — ``step_up``/``step_down`` and the ``k`` setter are
      no-ops while the window is open; the controller's perturbations
      simply stop moving the operating point.
    """

    def __init__(self, scheduler: FaultScheduler, **kwargs) -> None:
        super().__init__(**kwargs)
        self._scheduler = scheduler

    def effective_efficiency(self) -> float:
        return self.efficiency * self._scheduler.converter_efficiency_factor()

    @property
    def k(self) -> float:
        return self._k

    @k.setter
    def k(self, value: float) -> None:
        if self._scheduler.k_frozen():
            return
        self._k = self._clamp(value)

    def step_up(self, steps: int = 1) -> float:
        if self._scheduler.k_frozen():
            return self._k
        return super().step_up(steps)

    def step_down(self, steps: int = 1) -> float:
        if self._scheduler.k_frozen():
            return self._k
        return super().step_down(steps)


class FaultyATS:
    """A transfer switch with scheduled transfer failures and latency.

    * ``ats_stuck`` — transfers fail outright: the underlying switch is
      not consulted and the previously selected source holds (physically
      the UPS bridges whatever the stuck switch still feeds).
    * ``ats_latency`` — a decided transfer takes effect ``param`` engine
      steps late; until then the old source keeps feeding the load
      (UPS bridging through the switchover).
    """

    def __init__(self, inner: AutomaticTransferSwitch, scheduler: FaultScheduler) -> None:
        self._inner = inner
        self._scheduler = scheduler
        self._reported = inner.source
        self._pending_steps: int | None = None

    @property
    def source(self) -> PowerSource:
        return self._reported

    @property
    def switch_count(self) -> int:
        return self._inner.switch_count

    def update(self, available_solar_w: float, min_load_w: float) -> PowerSource:
        sched = self._scheduler
        if sched.ats_blocked():
            # Failed transfer: the switch state is frozen until repair.
            self._pending_steps = None
            return self._reported
        desired = self._inner.update(available_solar_w, min_load_w)
        if desired is self._reported:
            self._pending_steps = None
            return self._reported
        if self._pending_steps is None:
            self._pending_steps = sched.ats_latency_steps()
        self._pending_steps -= 1
        if self._pending_steps < 0:
            self._pending_steps = None
            self._reported = desired
        return self._reported
