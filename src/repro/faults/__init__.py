"""Deterministic fault injection for the SolarCore simulation stack.

The paper's whole premise (Section 2, Figure 8) is a chip riding an
unreliable, battery-less supply — the ATS and UPS exist precisely
because the PV side fails.  This package makes those failures first
class: a seeded :class:`FaultSchedule` of timed windows (sensor
dropout/stuck/bias/noise, PV string loss, soiling, converter
degradation, stuck transfer-ratio knob, ATS transfer failures and
latency, missing trace samples), a per-run :class:`FaultScheduler`
driven by the unified :class:`~repro.core.engine.DayEngine`, and
component wrappers (:mod:`repro.faults.injectors`) that misbehave only
inside their windows.

The contract enforced by ``tests/faults``: an **empty schedule is
provably free** (byte-identical results to a run with no schedule at
all), and a seeded schedule **replays deterministically** across
serial, parallel, and cached execution.

Usage::

    from repro.core.simulation import run_day
    from repro.environment.locations import location_by_code

    day = run_day(
        "HM2", location_by_code("AZ"), 7,
        faults="sensor_dropout@600-660,soiling@480-:0.85,seed=7",
    )
"""

from __future__ import annotations

from repro.faults.injectors import (
    FaultyArray,
    FaultyATS,
    FaultyConverter,
    FaultySensor,
)
from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultSpec
from repro.faults.scheduler import FaultScheduler

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "FaultScheduler",
    "FaultyArray",
    "FaultySensor",
    "FaultyConverter",
    "FaultyATS",
    "FaultKit",
    "build_fault_kit",
]

#: Fault kinds acting on the I/V sensor front-end.
SENSOR_KINDS = ("sensor_dropout", "sensor_stuck", "sensor_bias", "sensor_noise")
#: Fault kinds acting on the PV generator.
ARRAY_KINDS = ("pv_string",)
#: Fault kinds acting on the DC/DC stage.
CONVERTER_KINDS = ("conv_eff", "k_stuck")
#: Fault kinds acting on the transfer switch.
ATS_KINDS = ("ats_stuck", "ats_latency")


class FaultKit:
    """Everything a ``*_day_engine`` factory needs to wire one schedule.

    Wraps only the components the schedule actually touches, so a
    sensor-only schedule leaves the array, converter, and ATS pristine.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.scheduler = FaultScheduler(schedule)

    def wrap_array(self, array):
        """The (possibly wrapped) PV generator."""
        if self.scheduler.has(*ARRAY_KINDS):
            return FaultyArray(array, self.scheduler)
        return array

    def wrap_sensor(self, sensor):
        """The (possibly wrapped) I/V sensor; None stays None when the
        schedule has no sensor faults (the policy builds its default)."""
        if not self.scheduler.has(*SENSOR_KINDS):
            return sensor
        from repro.power.sensors import IVSensor

        return FaultySensor(sensor or IVSensor(), self.scheduler)

    def make_converter(self):
        """A faulty DC/DC stage, or None when the schedule has no
        converter faults (the policy builds its default)."""
        if self.scheduler.has(*CONVERTER_KINDS):
            return FaultyConverter(self.scheduler)
        return None


def build_fault_kit(faults) -> FaultKit | None:
    """Normalize a faults argument into a :class:`FaultKit`.

    Accepts a spec string, a :class:`FaultSchedule`, or None; empty
    schedules yield None so every downstream hook stays on its
    fault-free fast path (the byte-identity guarantee).
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        faults = FaultSchedule.parse(faults)
    if not isinstance(faults, FaultSchedule):
        raise TypeError(
            f"faults must be a spec string or FaultSchedule, got {type(faults).__name__}"
        )
    if not faults:
        return None
    return FaultKit(faults)
