"""Deterministic, seeded fault schedules for day simulations.

SolarCore's premise is a chip fed from an unreliable, battery-less
supply; this module describes *when* and *how* that supply chain
misbehaves.  A :class:`FaultSchedule` is an immutable list of timed
:class:`FaultSpec` windows plus one RNG seed; it is pure data — the
per-run machinery that applies it lives in
:mod:`repro.faults.scheduler` and :mod:`repro.faults.injectors`.

Schedules round-trip through a compact spec grammar so they can ride on
the CLI (``--faults``) and inside :class:`~repro.harness.parallel.SweepTask`
cache keys::

    kind@start-end[:param][,kind@start-end[:param]...][,seed=N]

    sensor_dropout@540-560            # sensor dead 9:00-9:20
    soiling@480-:0.85                 # 15 % soiling from 8:00 onward
    pv_string@600-700:0.5,seed=7      # half the strings lost, seeded

Times are minutes since midnight; an omitted end means "until the end
of the day".  Each kind takes at most one numeric knob, defaulted when
omitted.  :meth:`FaultSchedule.canonical` renders the normalized string
used for cache addressing, so equivalent spellings hit the same cache
entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FaultSpec", "FaultSchedule", "FAULT_KINDS"]


#: kind -> (default param, description).  ``None`` means the kind takes
#: no knob; a numeric default is used when the spec omits ``:param``.
FAULT_KINDS: dict[str, tuple[float | None, str]] = {
    # -- sensor faults (IVSensor front-end) ----------------------------
    "sensor_dropout": (None, "sensor produces no readings"),
    "sensor_stuck": (None, "sensor repeats its last pre-fault reading"),
    "sensor_bias": (0.002, "multiplicative bias drifting at rate/min"),
    "sensor_noise": (0.05, "extra multiplicative Gaussian noise (sigma)"),
    # -- PV faults -----------------------------------------------------
    "pv_string": (0.5, "fraction of parallel strings still delivering"),
    "soiling": (0.85, "irradiance derate factor (dust/soiling)"),
    # -- converter faults ----------------------------------------------
    "conv_eff": (0.9, "conversion-efficiency derate factor"),
    "k_stuck": (None, "transfer-ratio knob frozen at its current value"),
    # -- supply-path faults --------------------------------------------
    "ats_stuck": (None, "transfer switch fails; UPS bridges in place"),
    "ats_latency": (3.0, "switchover takes effect N steps late"),
    # -- trace faults --------------------------------------------------
    "trace_gap": (None, "irradiance samples missing (hold last good)"),
}


def _format_minutes(value: float) -> str:
    """Render a minute bound compactly (no trailing ``.0``)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault window.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        start_min: Window start [minutes since midnight], inclusive.
        end_min: Window end [minutes], exclusive; ``inf`` = open-ended.
        param: Kind-specific numeric knob (defaulted per kind, None for
            knobless kinds).
    """

    kind: str
    start_min: float
    end_min: float = math.inf
    param: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(sorted(FAULT_KINDS))}"
            )
        if not self.start_min >= 0.0:
            raise ValueError(f"start_min must be >= 0, got {self.start_min!r}")
        if not self.end_min > self.start_min:
            raise ValueError(
                f"need start < end, got [{self.start_min}, {self.end_min})"
            )
        default = FAULT_KINDS[self.kind][0]
        if self.param is None and default is not None:
            object.__setattr__(self, "param", default)
        if self.param is not None and not math.isfinite(self.param):
            raise ValueError(f"param must be finite, got {self.param!r}")
        if self.param is not None and self.param < 0.0:
            raise ValueError(f"param must be >= 0, got {self.param!r}")

    def active(self, minute: float) -> bool:
        """Whether the window covers ``minute`` (half-open interval)."""
        return self.start_min <= minute < self.end_min

    def canonical(self) -> str:
        """The spec-grammar rendering of this window."""
        end = "" if math.isinf(self.end_min) else _format_minutes(self.end_min)
        text = f"{self.kind}@{_format_minutes(self.start_min)}-{end}"
        if self.param is not None and self.param != FAULT_KINDS[self.kind][0]:
            text += f":{self.param:g}"
        return text


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of fault windows plus the injection RNG seed.

    An empty schedule is falsy, and every consumer treats it exactly
    like "no faults" — the acceptance contract is that a run under an
    empty schedule is byte-identical to one with no schedule at all.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.specs, key=lambda s: (s.start_min, s.kind, s.end_min))
        )
        object.__setattr__(self, "specs", ordered)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def kinds(self) -> frozenset[str]:
        """The distinct fault kinds the schedule touches."""
        return frozenset(spec.kind for spec in self.specs)

    def canonical(self) -> str:
        """Normalized spec string; parses back to an equal schedule."""
        parts = [spec.canonical() for spec in self.specs]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: str | None) -> "FaultSchedule":
        """Parse a spec string (see module docstring).

        ``None``, ``""``, and ``"none"`` all yield the empty schedule.

        Raises:
            ValueError: Malformed element, unknown kind, or bad window.
        """
        if text is None:
            return cls()
        text = text.strip()
        if not text or text.lower() == "none":
            return cls()
        specs: list[FaultSpec] = []
        seed = 0
        for element in text.split(","):
            element = element.strip()
            if not element:
                continue
            if element.startswith("seed="):
                try:
                    seed = int(element[len("seed="):])
                except ValueError:
                    raise ValueError(
                        f"bad seed element {element!r} in fault spec"
                    ) from None
                continue
            specs.append(cls._parse_spec(element))
        return cls(specs=tuple(specs), seed=seed)

    @staticmethod
    def _parse_spec(element: str) -> FaultSpec:
        head, sep, window = element.partition("@")
        if not sep:
            raise ValueError(
                f"bad fault element {element!r}: expected kind@start-end[:param]"
            )
        window, _, raw_param = window.partition(":")
        start_text, sep, end_text = window.partition("-")
        if not sep:
            raise ValueError(
                f"bad fault window in {element!r}: expected start-end "
                "(omit end for open-ended)"
            )
        try:
            start = float(start_text)
            end = float(end_text) if end_text else math.inf
            param = float(raw_param) if raw_param else None
        except ValueError:
            raise ValueError(f"bad number in fault element {element!r}") from None
        return FaultSpec(kind=head, start_min=start, end_min=end, param=param)
