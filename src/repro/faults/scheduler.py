"""Per-run fault scheduling: the clock the injectors read.

One :class:`FaultScheduler` is built per day run from an immutable
:class:`~repro.faults.schedule.FaultSchedule`.  The
:class:`~repro.core.engine.DayEngine` calls :meth:`FaultScheduler.begin_step`
at the top of every minute step; the scheduler then

* advances its notion of *now* (the injector wrappers consult it from
  deep inside the electrical solves, where no minute is in scope),
* emits :class:`~repro.telemetry.events.FaultInjectedEvent` /
  :class:`~repro.telemetry.events.RecoveryEvent` records on window
  entry/exit, and
* applies the trace-level faults itself (missing irradiance samples are
  held at the last good value; soiling derates what reaches the panel).

Determinism: the injection RNG is seeded from the schedule at
construction and the scheduler is rebuilt for every run, so a seeded
fault day replays bit-identically whether computed serially, in a
worker process, or read back from the disk cache.
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.telemetry.events import FaultInjectedEvent, RecoveryEvent

__all__ = ["FaultScheduler"]


class FaultScheduler:
    """Applies a :class:`FaultSchedule` to one day run.

    Args:
        schedule: The immutable fault windows + seed to apply.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = np.random.default_rng(schedule.seed)
        self.now: float = -math.inf
        self._kinds = schedule.kinds()
        self._was_active: set[FaultSpec] = set()
        self._last_raw_irradiance = 0.0

    def has(self, *kinds: str) -> bool:
        """Whether the schedule contains any of ``kinds`` at any time."""
        return any(kind in self._kinds for kind in kinds)

    def active(self, kind: str) -> FaultSpec | None:
        """The first window of ``kind`` covering *now*, or None."""
        for spec in self.schedule.specs:
            if spec.kind == kind and spec.active(self.now):
                return spec
        return None

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    def begin_step(self, minute: float, irradiance: float, tel) -> float:
        """Advance the fault clock to ``minute``; return the effective
        irradiance after trace-level faults.

        Emits window entry/exit telemetry, holds the last good sample
        through ``trace_gap`` windows, and applies the ``soiling``
        derate.
        """
        self.now = minute
        active = {spec for spec in self.schedule.specs if spec.active(minute)}
        if tel.enabled:
            for spec in sorted(
                active - self._was_active, key=lambda s: (s.start_min, s.kind)
            ):
                tel.count("faults.injected")
                tel.emit(
                    FaultInjectedEvent(
                        minute=minute,
                        kind=spec.kind,
                        start_min=spec.start_min,
                        end_min=spec.end_min,
                        param=spec.param,
                    )
                )
            for spec in sorted(
                self._was_active - active, key=lambda s: (s.start_min, s.kind)
            ):
                tel.count("faults.cleared")
                tel.emit(
                    RecoveryEvent(
                        minute=minute,
                        source=f"fault:{spec.kind}",
                        stale_min=minute - spec.start_min,
                    )
                )
        self._was_active = active

        if self.active("trace_gap") is None:
            self._last_raw_irradiance = irradiance
        else:
            # A missing sample: hold the last good irradiance reading.
            irradiance = self._last_raw_irradiance
        spec = self.active("soiling")
        if spec is not None:
            irradiance *= spec.param
        return irradiance

    # ------------------------------------------------------------------
    # Component-facing fault state
    # ------------------------------------------------------------------
    def pv_current_factor(self) -> float:
        """Fraction of the array's current still delivered (string loss)."""
        spec = self.active("pv_string")
        return 1.0 if spec is None else spec.param

    def converter_efficiency_factor(self) -> float:
        """Multiplier on the converter's nominal efficiency."""
        spec = self.active("conv_eff")
        return 1.0 if spec is None else min(spec.param, 1.0)

    def k_frozen(self) -> bool:
        """Whether the transfer-ratio knob is stuck right now."""
        return self.active("k_stuck") is not None

    def ats_blocked(self) -> bool:
        """Whether transfers fail outright (UPS bridging in place)."""
        return self.active("ats_stuck") is not None

    def ats_latency_steps(self) -> int:
        """Switchover latency [engine steps]; 0 = instantaneous."""
        spec = self.active("ats_latency")
        return 0 if spec is None else max(0, int(spec.param))
