"""SolarCore: solar energy driven multi-core architecture power management.

A full reproduction of Li, Zhang, Cho & Li (HPCA 2011).  The package builds
every layer of the paper's system from scratch:

* :mod:`repro.pv` — single-diode PV cell/module/array models (BP3180N),
  I-V/P-V curves, exact MPP solving.
* :mod:`repro.environment` — the NREL-MIDC-style meteorological substrate:
  four US stations, solar geometry, seeded stochastic weather, day traces.
* :mod:`repro.power` — DC/DC converter, PV-converter-load operating-point
  solving, I/V sensors, ATS/UPS/PSU, and the battery-equipped baseline.
* :mod:`repro.multicore` — the 8-core chip: per-core DVFS (VID), power
  model (EPI/IPC based with uncore), power gating, performance counters.
* :mod:`repro.workloads` — SPEC2000-class benchmarks with phase-level IPC
  traces and the paper's Table 5 multi-programmed mixes.
* :mod:`repro.core` — the paper's contribution: the SolarCore three-step
  MPPT controller, throughput-power-ratio load optimization, the IC/RR/Opt
  scheduling policies, the Fixed-Power baseline, and day-long simulation.
* :mod:`repro.metrics` — PTP, energy utilization, tracking error.
* :mod:`repro.harness` — one experiment per paper table/figure.

Quickstart::

    from repro import run_day, PHOENIX_AZ

    day = run_day("HM2", PHOENIX_AZ, month=7, policy="MPPT&Opt")
    print(f"utilization {day.energy_utilization:.0%}, "
          f"tracking error {day.mean_tracking_error:.1%}")
"""

from repro.core import (
    DayResult,
    SolarCoreConfig,
    SolarCoreController,
    run_day,
    run_day_battery,
    run_day_fixed,
)
from repro.environment import (
    ALL_LOCATIONS,
    ELIZABETH_CITY_NC,
    GOLDEN_CO,
    OAK_RIDGE_TN,
    PHOENIX_AZ,
    generate_trace,
    location_by_code,
)
from repro.multicore import MultiCoreChip
from repro.pv import PVArray, PVCell, PVModule, bp3180n, find_mpp
from repro.workloads import ALL_MIX_NAMES, mix

__version__ = "1.0.0"

__all__ = [
    "run_day",
    "run_day_fixed",
    "run_day_battery",
    "DayResult",
    "SolarCoreConfig",
    "SolarCoreController",
    "PVCell",
    "PVModule",
    "PVArray",
    "bp3180n",
    "find_mpp",
    "MultiCoreChip",
    "mix",
    "ALL_MIX_NAMES",
    "generate_trace",
    "location_by_code",
    "ALL_LOCATIONS",
    "PHOENIX_AZ",
    "GOLDEN_CO",
    "ELIZABETH_CITY_NC",
    "OAK_RIDGE_TN",
    "__version__",
]
