"""Power-electronics substrate: converter, operating point, PSU, battery."""

from repro.power.battery import (
    BATTERY_LEVELS,
    Battery,
    BatteryEquippedSystem,
    DeratingLevel,
)
from repro.power.battery_economics import (
    BatteryCostAnalysis,
    CycleLifeModel,
    battery_cost_analysis,
    required_capacity_wh,
)
from repro.power.converter import DCDCConverter
from repro.power.gridtie import GridTieDayResult, run_day_gridtie
from repro.power.operating_point import OperatingPoint, solve_operating_point
from repro.power.psu import (
    AutomaticTransferSwitch,
    EnergyLedger,
    PowerSource,
    PowerSupplyUnit,
)
from repro.power.sensors import IVSensor, SensorReading

__all__ = [
    "DCDCConverter",
    "OperatingPoint",
    "solve_operating_point",
    "IVSensor",
    "SensorReading",
    "PowerSource",
    "AutomaticTransferSwitch",
    "PowerSupplyUnit",
    "EnergyLedger",
    "Battery",
    "BatteryEquippedSystem",
    "DeratingLevel",
    "BATTERY_LEVELS",
    "required_capacity_wh",
    "CycleLifeModel",
    "BatteryCostAnalysis",
    "battery_cost_analysis",
    "GridTieDayResult",
    "run_day_gridtie",
]
