"""Coupled PV-converter-load operating-point solving (paper Figure 5).

The actual operating point of the direct-coupled system is the intersection
of the PV generator's I-V curve with the chip's load line reflected through
the DC/DC converter.  With the chip modeled as a resistance ``R`` at the
converter output, the PV terminal voltage ``V`` satisfies

    I_pv(V) = V / (k^2 * eta * R)

``I_pv`` is strictly decreasing in ``V`` while the right side is strictly
increasing, so the equilibrium is unique; Brent's method brackets it on
``(0, Voc)``.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.power.converter import DCDCConverter
from repro.pv.curves import PVDevice
from repro.telemetry import hub as telemetry_hub

__all__ = ["OperatingPoint", "OperatingPointError", "solve_operating_point"]

log = logging.getLogger(__name__)


class OperatingPointError(RuntimeError):
    """The coupled PV-converter-load solve failed.

    Raised instead of a bare scipy ``ValueError`` when the root-find
    cannot bracket an equilibrium (NaN inputs, a degenerate I-V curve);
    the message names the full (G, T, k, load) coordinates so a failing
    sweep cell can be reproduced in isolation.
    """


@dataclass(frozen=True)
class OperatingPoint:
    """The electrical state of the PV-converter-load system.

    Attributes:
        pv_voltage: PV terminal voltage [V].
        pv_current: PV output current [A].
        output_voltage: Converter output (chip rail) voltage [V].
        output_current: Converter output current [A].
    """

    pv_voltage: float
    pv_current: float
    output_voltage: float
    output_current: float

    @property
    def pv_power(self) -> float:
        """Power drawn from the panel [W]."""
        return self.pv_voltage * self.pv_current

    @property
    def output_power(self) -> float:
        """Power delivered to the load [W]."""
        return self.output_voltage * self.output_current


def solve_operating_point(
    device: PVDevice,
    converter: DCDCConverter,
    load_resistance: float,
    irradiance: float,
    cell_temp_c: float,
) -> OperatingPoint:
    """Solve the equilibrium of panel, converter, and resistive load.

    Args:
        device: PV module or array.
        converter: The DC/DC matching network (its current ``k`` is used).
        load_resistance: Chip resistance at the converter output [ohm];
            ``inf`` (all cores gated) yields the open-circuit point.
        irradiance: Plane-of-array irradiance [W/m^2].
        cell_temp_c: PV cell temperature [C].

    Returns:
        The unique :class:`OperatingPoint`.

    Raises:
        OperatingPointError: NaN inputs, or the root-find could not
            bracket an equilibrium; the message carries (G, T, k, load).
    """
    def coordinates() -> str:
        return (
            f"G={irradiance!r} W/m^2, T={cell_temp_c!r} C, "
            f"k={converter.k!r}, load={load_resistance!r} ohm"
        )

    if math.isnan(load_resistance) or math.isnan(irradiance) or math.isnan(cell_temp_c):
        raise OperatingPointError(f"NaN operating-point input ({coordinates()})")
    if load_resistance <= 0:
        raise ValueError(f"load_resistance must be positive, got {load_resistance}")
    if irradiance <= 0.0:
        # Dark panel: no power flows.
        return OperatingPoint(0.0, 0.0, 0.0, 0.0)

    voc = device.open_circuit_voltage(irradiance, cell_temp_c)
    if load_resistance == float("inf"):
        return OperatingPoint(voc, 0.0, converter.output_voltage(voc), 0.0)

    tel = telemetry_hub.current()
    if tel.enabled:
        tel.count("power.brentq_solves")
    prof = tel.profile

    reflected = converter.reflected_resistance(load_resistance)

    def mismatch(v: float) -> float:
        return device.current(v, irradiance, cell_temp_c) - v / reflected

    # mismatch(0+) = Isc > 0, mismatch(Voc) = -Voc/reflected < 0.
    try:
        if prof.enabled:
            # full_output returns the identical root plus the iteration
            # count; only the profiled path pays for the RootResults.
            start = prof.clock()
            root, info = brentq(
                mismatch, 1e-9, voc, xtol=1e-9, rtol=1e-12, full_output=True
            )
            prof.add("power.operating_point", prof.clock() - start)
            prof.count("power.brentq_calls")
            prof.count("power.brentq_iterations", float(info.iterations))
            v_pv = float(root)
        else:
            v_pv = float(brentq(mismatch, 1e-9, voc, xtol=1e-9, rtol=1e-12))
    except ValueError as exc:
        # brentq's "f(a) and f(b) must have different signs" with no hint
        # of which grid cell produced it is undebuggable mid-sweep.
        raise OperatingPointError(
            f"operating-point solve failed on (0, Voc={voc!r} V): {exc} "
            f"({coordinates()})"
        ) from exc
    if math.isnan(v_pv):
        raise OperatingPointError(
            f"operating-point solve returned NaN ({coordinates()})"
        )
    i_pv = device.current(v_pv, irradiance, cell_temp_c)
    return OperatingPoint(
        pv_voltage=v_pv,
        pv_current=i_pv,
        output_voltage=converter.output_voltage(v_pv),
        output_current=converter.output_current(i_pv),
    )
