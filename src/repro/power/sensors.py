"""Front-end I/V sensing (paper Figure 8).

The SolarCore controller never sees the panel's true state — only the
current/voltage sensors at the converter output.  ``IVSensor`` models an
ADC-backed sensor pair with optional Gaussian noise and quantization; the
default configuration is ideal (exact), matching the paper's simulations,
while tests and ablations can inject realistic imperfections.
"""

from __future__ import annotations

import numpy as np

from repro.power.operating_point import OperatingPoint

__all__ = ["IVSensor", "SensorReading", "SensorDropout"]

from dataclasses import dataclass


class SensorDropout(RuntimeError):
    """The sensor front-end produced no reading at all.

    Raised by faulty sensor models (see :mod:`repro.faults.injectors`)
    during a dropout window.  The controller responds with its graceful
    degradation ladder: hold the last good reading while it is fresh,
    then fall back to a conservative power budget once it goes stale
    (DESIGN.md section 10).
    """


@dataclass(frozen=True)
class SensorReading:
    """One sampled (voltage, current) pair at the converter output.

    Attributes:
        voltage: Measured output voltage [V].
        current: Measured output current [A].
    """

    voltage: float
    current: float

    @property
    def power(self) -> float:
        """Measured power [W]."""
        return self.voltage * self.current


class IVSensor:
    """A voltage+current sensor pair with optional noise and quantization.

    Args:
        noise_fraction: Standard deviation of multiplicative Gaussian noise
            (0 = ideal).
        quantization_v: Voltage LSB [V] (0 = continuous).
        quantization_a: Current LSB [A] (0 = continuous).
        seed: RNG seed for the noise process.
    """

    def __init__(
        self,
        noise_fraction: float = 0.0,
        quantization_v: float = 0.0,
        quantization_a: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_fraction < 0:
            raise ValueError(f"noise_fraction must be >= 0, got {noise_fraction}")
        if quantization_v < 0 or quantization_a < 0:
            raise ValueError("quantization steps must be >= 0")
        self.noise_fraction = noise_fraction
        self.quantization_v = quantization_v
        self.quantization_a = quantization_a
        self._rng = np.random.default_rng(seed)

    def _distort(self, value: float, lsb: float) -> float:
        if self.noise_fraction > 0.0:
            value *= 1.0 + float(self._rng.normal(0.0, self.noise_fraction))
        if lsb > 0.0:
            value = round(value / lsb) * lsb
        return value

    def read(self, point: OperatingPoint) -> SensorReading:
        """Sample the converter-output side of an operating point."""
        return SensorReading(
            voltage=self._distort(point.output_voltage, self.quantization_v),
            current=self._distort(point.output_current, self.quantization_a),
        )
