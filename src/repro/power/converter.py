"""Tunable DC/DC converter (the power-conservative matching network).

The paper models the converter as a PWM-based ideal transformer
(Section 2.3): ``Vout = Vin / k`` and ``Iout = k * Iin`` with ``Pin = Pout``.
The transfer ratio ``k`` is set by the controller in discrete steps
(``delta_k``), mirroring PWM duty-cycle quantization.  An optional conversion
efficiency below 1.0 models a non-ideal stage.
"""

from __future__ import annotations

__all__ = ["DCDCConverter"]


class DCDCConverter:
    """A PWM transformer with an adjustable transfer ratio ``k``.

    Args:
        k: Initial transfer ratio.
        k_min: Lowest permitted ratio.
        k_max: Highest permitted ratio.
        delta_k: Tuning step used by ``step_up``/``step_down`` (the paper's
            delta-k perturbation in MPPT step 2).
        efficiency: Power conversion efficiency in (0, 1].
    """

    def __init__(
        self,
        k: float = 3.0,
        k_min: float = 0.5,
        k_max: float = 10.0,
        delta_k: float = 0.05,
        efficiency: float = 1.0,
    ) -> None:
        if k_min <= 0 or k_max <= k_min:
            raise ValueError(f"need 0 < k_min < k_max, got [{k_min}, {k_max}]")
        if delta_k <= 0:
            raise ValueError(f"delta_k must be positive, got {delta_k}")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        self.k_min = k_min
        self.k_max = k_max
        self.delta_k = delta_k
        self.efficiency = efficiency
        self._k = self._clamp(k)

    def _clamp(self, k: float) -> float:
        return min(max(k, self.k_min), self.k_max)

    @property
    def k(self) -> float:
        """Current transfer ratio."""
        return self._k

    @k.setter
    def k(self, value: float) -> None:
        self._k = self._clamp(value)

    def step_up(self, steps: int = 1) -> float:
        """Raise ``k`` by ``steps * delta_k`` (clamped); returns the new k."""
        self._k = self._clamp(self._k + steps * self.delta_k)
        return self._k

    def step_down(self, steps: int = 1) -> float:
        """Lower ``k`` by ``steps * delta_k`` (clamped); returns the new k."""
        self._k = self._clamp(self._k - steps * self.delta_k)
        return self._k

    def effective_efficiency(self) -> float:
        """Conversion efficiency in effect right now.

        Every electrical relation reads the efficiency through this one
        hook, so degraded-stage models (e.g.
        :class:`repro.faults.injectors.FaultyConverter`) can derate it
        per-step by overriding a single method.
        """
        return self.efficiency

    # ------------------------------------------------------------------
    # Electrical relations
    # ------------------------------------------------------------------
    def output_voltage(self, input_voltage: float) -> float:
        """Converter output voltage [V] for a given input (PV) voltage."""
        return input_voltage / self._k

    def output_current(self, input_current: float) -> float:
        """Converter output current [A] for a given input (PV) current."""
        return input_current * self._k * self.effective_efficiency()

    def input_voltage(self, output_voltage: float) -> float:
        """PV-side voltage [V] corresponding to an output voltage."""
        return output_voltage * self._k

    def reflected_resistance(self, load_resistance: float) -> float:
        """The load resistance as seen from the PV side [ohm].

        ``Vin/Iin = (k*Vout) / (Iout/(k*eff)) = k^2 * eff * R``.
        """
        if load_resistance <= 0:
            raise ValueError(
                f"load_resistance must be positive, got {load_resistance}"
            )
        return self._k * self._k * self.effective_efficiency() * load_resistance
