"""Grid-connected PV (paper Figure 2-A): the taxonomy's third system.

A grid-tied installation runs the panel at its MPP through an inverter and
feeds the AC bus; the computer simply draws utility-quality power at full
speed, and the solar generation offsets grid consumption (net metering).
Performance is maximal by construction — the comparison against SolarCore
is about *energy economics*, not throughput:

* the inverter chain loses 4-8 % of the harvest;
* the panel's DC energy is laundered through AC and back through the PSU
  to feed a DC load, stacking conversions the direct-coupled design skips;
* grid-tie needs the inverter (and usually interconnection agreements) the
  paper's Figure 2-B system avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SolarCoreConfig
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.multicore.chip import MultiCoreChip
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import WorkloadMix, mix as mix_by_name

__all__ = ["GridTieDayResult", "run_day_gridtie"]

#: Typical string-inverter efficiency (DC -> AC).
DEFAULT_INVERTER_EFFICIENCY = 0.95
#: AC -> DC PSU efficiency on the consumption side.
DEFAULT_PSU_EFFICIENCY = 0.90


@dataclass(frozen=True)
class GridTieDayResult:
    """Measurements of one grid-tied day (paper Figure 2-A).

    Attributes:
        mix_name: Workload mix.
        location_code: Station code.
        month: Calendar month.
        harvested_dc_wh: Panel MPP energy over the day [Wh].
        exported_ac_wh: AC energy delivered to the bus after the inverter.
        consumed_ac_wh: AC energy the computer's PSU drew from the bus.
        ptp: Instructions committed over the day [Ginst] (always full
            speed on grid-quality power).
    """

    mix_name: str
    location_code: str
    month: int
    harvested_dc_wh: float
    exported_ac_wh: float
    consumed_ac_wh: float
    ptp: float

    @property
    def net_metering_balance_wh(self) -> float:
        """AC energy exported minus consumed (positive = net producer)."""
        return self.exported_ac_wh - self.consumed_ac_wh

    @property
    def green_fraction(self) -> float:
        """Solar share of the computer's energy under net metering."""
        if self.consumed_ac_wh <= 0.0:
            return 0.0
        return min(1.0, self.exported_ac_wh / self.consumed_ac_wh)

    @property
    def conversion_loss_wh(self) -> float:
        """Harvest lost in the DC->AC inverter stage [Wh]."""
        return self.harvested_dc_wh - self.exported_ac_wh


def run_day_gridtie(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    inverter_efficiency: float = DEFAULT_INVERTER_EFFICIENCY,
    psu_efficiency: float = DEFAULT_PSU_EFFICIENCY,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
) -> GridTieDayResult:
    """Simulate one day of the grid-connected system (Figure 2-A).

    The panel tracks its MPP perfectly (string inverters do); the chip runs
    flat-out from the AC bus the whole day.

    Args/returns: as :func:`repro.core.simulation.run_day`, plus the
    inverter and PSU efficiencies.
    """
    if not 0.0 < inverter_efficiency <= 1.0:
        raise ValueError(
            f"inverter_efficiency must be in (0, 1], got {inverter_efficiency}"
        )
    if not 0.0 < psu_efficiency <= 1.0:
        raise ValueError(f"psu_efficiency must be in (0, 1], got {psu_efficiency}")
    cfg = config or SolarCoreConfig()
    workload = workload if isinstance(workload, WorkloadMix) else mix_by_name(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    chip = MultiCoreChip(workload, spec=cfg.chip_spec)
    chip.set_all_max()

    dt = cfg.step_minutes
    harvested = 0.0
    consumed_dc = 0.0
    for i in range(len(trace.minutes) - 1):
        minute = float(trace.minutes[i])
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        harvested += find_mpp(array, irradiance, cell_temp).power * dt / 60.0
        consumed_dc += chip.total_power_at(minute) * dt / 60.0
        chip.advance(minute, dt)

    return GridTieDayResult(
        mix_name=workload.name,
        location_code=location.code,
        month=month,
        harvested_dc_wh=harvested,
        exported_ac_wh=harvested * inverter_efficiency,
        consumed_ac_wh=consumed_dc / psu_efficiency,
        ptp=chip.retired_ginst,
    )
