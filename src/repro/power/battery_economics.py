"""Battery sizing, aging, and cost — quantifying the paper's Section 1 case.

The paper argues against battery-buffered PV systems on four grounds: the
capacity needed by a multi-core load is bulky and expensive, turn-around
efficiency is poor, cycling ages the cells, and over the system's life the
battery becomes its most expensive component (refs [6], [7]).  This module
turns those claims into numbers:

* :func:`required_capacity_wh` — nameplate capacity for a load/autonomy
  target under depth-of-discharge and efficiency de-ratings;
* :class:`CycleLifeModel` — cycles-to-failure vs depth of discharge (the
  standard power-law fit to lead-acid/VRLA data);
* :func:`battery_cost_analysis` — annualized storage cost for a daily
  solar-buffering duty cycle, the figure SolarCore's battery-free design
  zeroes out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "required_capacity_wh",
    "CycleLifeModel",
    "BatteryCostAnalysis",
    "battery_cost_analysis",
]


def required_capacity_wh(
    load_w: float,
    autonomy_hours: float,
    max_depth_of_discharge: float = 0.8,
    round_trip_efficiency: float = 0.85,
) -> float:
    """Nameplate battery capacity [Wh] for a load/autonomy requirement.

    Standard stand-alone-PV sizing (IEEE Std 1562, the paper's ref [21]):
    the usable window is the allowed depth of discharge, and delivered
    energy pays the discharge-path half of the round-trip loss.

    Args:
        load_w: Sustained load power [W].
        autonomy_hours: Hours the battery must carry the load alone.
        max_depth_of_discharge: Usable fraction of nameplate capacity.
        round_trip_efficiency: Charge*discharge efficiency.
    """
    if load_w <= 0 or autonomy_hours <= 0:
        raise ValueError("load and autonomy must be positive")
    if not 0.0 < max_depth_of_discharge <= 1.0:
        raise ValueError(
            f"max_depth_of_discharge must be in (0, 1], got {max_depth_of_discharge}"
        )
    if not 0.0 < round_trip_efficiency <= 1.0:
        raise ValueError(
            f"round_trip_efficiency must be in (0, 1], got {round_trip_efficiency}"
        )
    discharge_efficiency = math.sqrt(round_trip_efficiency)
    return load_w * autonomy_hours / (max_depth_of_discharge * discharge_efficiency)


@dataclass(frozen=True)
class CycleLifeModel:
    """Cycles-to-failure vs depth of discharge.

    The standard power-law fit ``N(DoD) = N_ref * (DoD_ref / DoD)^alpha``:
    shallower cycling buys disproportionately more cycles.  Defaults fit
    VRLA (valve-regulated lead-acid) data: ~500 cycles at 80 % DoD.

    Attributes:
        cycles_at_ref: Cycle life at the reference depth of discharge.
        dod_ref: Reference depth of discharge.
        exponent: Power-law steepness.
        calendar_life_years: Shelf-life bound independent of cycling.
    """

    cycles_at_ref: float = 500.0
    dod_ref: float = 0.8
    exponent: float = 1.4
    calendar_life_years: float = 6.0

    def cycles_to_failure(self, depth_of_discharge: float) -> float:
        """Cycle life at a given depth of discharge."""
        if not 0.0 < depth_of_discharge <= 1.0:
            raise ValueError(
                f"depth_of_discharge must be in (0, 1], got {depth_of_discharge}"
            )
        return self.cycles_at_ref * (self.dod_ref / depth_of_discharge) ** self.exponent

    def service_years(
        self, depth_of_discharge: float, cycles_per_day: float = 1.0
    ) -> float:
        """Years until replacement, from cycling or calendar aging."""
        if cycles_per_day <= 0:
            raise ValueError(f"cycles_per_day must be positive, got {cycles_per_day}")
        cycling_years = self.cycles_to_failure(depth_of_discharge) / (
            cycles_per_day * 365.0
        )
        return min(cycling_years, self.calendar_life_years)


@dataclass(frozen=True)
class BatteryCostAnalysis:
    """Outcome of a storage cost analysis.

    Attributes:
        capacity_wh: Required nameplate capacity [Wh].
        capital_cost: Up-front battery cost [$].
        service_years: Years until replacement.
        annualized_cost: Capital amortized over the service life [$/yr].
        daily_cycle_dod: The duty cycle's depth of discharge.
    """

    capacity_wh: float
    capital_cost: float
    service_years: float
    annualized_cost: float
    daily_cycle_dod: float


def battery_cost_analysis(
    daily_buffer_wh: float,
    load_w: float,
    autonomy_hours: float = 4.0,
    cost_per_kwh: float = 150.0,
    cycle_model: CycleLifeModel | None = None,
    max_depth_of_discharge: float = 0.8,
    round_trip_efficiency: float = 0.85,
) -> BatteryCostAnalysis:
    """Annualized cost of the storage a battery-buffered system needs.

    The battery is sized by the *larger* of the autonomy requirement and
    the daily solar buffer; the daily cycle's depth of discharge against
    that capacity drives aging.

    Args:
        daily_buffer_wh: Solar energy cycled through storage per day [Wh]
            (e.g. a day's harvest for a full buffer design).
        load_w: Sustained load the autonomy requirement protects [W].
        autonomy_hours: Required backup duration [h].
        cost_per_kwh: Battery capital cost [$/kWh] (VRLA-class, ~2009).
        cycle_model: Aging model (defaults to VRLA).
        max_depth_of_discharge: Sizing DoD limit.
        round_trip_efficiency: Battery round-trip efficiency.
    """
    if daily_buffer_wh < 0:
        raise ValueError(f"daily_buffer_wh must be >= 0, got {daily_buffer_wh}")
    if cost_per_kwh <= 0:
        raise ValueError(f"cost_per_kwh must be positive, got {cost_per_kwh}")
    model = cycle_model or CycleLifeModel()

    autonomy_capacity = required_capacity_wh(
        load_w, autonomy_hours, max_depth_of_discharge, round_trip_efficiency
    )
    buffer_capacity = (
        daily_buffer_wh / max_depth_of_discharge if daily_buffer_wh > 0 else 0.0
    )
    capacity = max(autonomy_capacity, buffer_capacity)

    daily_dod = min(daily_buffer_wh / capacity, 1.0) if capacity > 0 else 0.0
    # Shallow daily cycling still ages the cells; floor the DoD used for
    # aging at a nominal 10% to keep the calendar bound active.
    service = model.service_years(max(daily_dod, 0.1))
    capital = capacity / 1000.0 * cost_per_kwh
    return BatteryCostAnalysis(
        capacity_wh=capacity,
        capital_cost=capital,
        service_years=service,
        annualized_cost=capital / service if service > 0 else float("inf"),
        daily_cycle_dod=daily_dod,
    )
