"""Battery-equipped PV baseline (paper Table 3 and Section 5).

The strongest competitor to SolarCore is a battery-buffered system: an MPPT
charge controller keeps the panel at its maximum power point, the battery
absorbs supply variation, and the processor runs at full speed from a stable
supply.  Its cost is the de-rating chain: MPPT conversion efficiency times
battery round-trip efficiency.  The paper's three performance levels:

    level      MPPT eff.  round-trip  overall de-rating
    high        97 %        95 %        92 %
    moderate    95 %        85 %        81 %   (typical)
    low         93 %        75 %        70 %

``BatteryEquippedSystem.harvestable_energy_wh`` gives the daily usable energy
under a de-rating level.  ``Battery`` is a stateful storage element used by
finer-grained simulations (charge/discharge with asymmetric losses,
self-discharge, capacity limits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.environment.trace import EnvironmentTrace
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp

__all__ = ["DeratingLevel", "BATTERY_LEVELS", "Battery", "BatteryEquippedSystem"]


@dataclass(frozen=True)
class DeratingLevel:
    """One row of the paper's Table 3.

    Attributes:
        name: Level label (``high``/``moderate``/``low``).
        mppt_efficiency: MPPT charge-controller conversion efficiency.
        battery_round_trip: Battery round-trip (charge*discharge) efficiency.
    """

    name: str
    mppt_efficiency: float
    battery_round_trip: float

    @property
    def overall(self) -> float:
        """Overall de-rating factor (product of the chain)."""
        return self.mppt_efficiency * self.battery_round_trip


#: The paper's three battery-system performance levels (Table 3).
BATTERY_LEVELS: dict[str, DeratingLevel] = {
    "high": DeratingLevel("high", 0.97, 0.95),
    "moderate": DeratingLevel("moderate", 0.95, 0.85),
    "low": DeratingLevel("low", 0.93, 0.75),
}


class Battery:
    """A stateful storage element with asymmetric charge/discharge losses.

    Round-trip efficiency is split evenly (square root) between the charge
    and discharge paths.  Self-discharge decays the state of charge
    exponentially.

    Args:
        capacity_wh: Usable capacity [Wh].
        round_trip_efficiency: Charge*discharge efficiency in (0, 1].
        self_discharge_per_day: Fraction of stored energy lost per day.
        initial_soc: Initial state of charge in [0, 1].
    """

    def __init__(
        self,
        capacity_wh: float,
        round_trip_efficiency: float = 0.85,
        self_discharge_per_day: float = 0.01,
        initial_soc: float = 0.0,
    ) -> None:
        if capacity_wh <= 0:
            raise ValueError(f"capacity_wh must be positive, got {capacity_wh}")
        if not 0.0 < round_trip_efficiency <= 1.0:
            raise ValueError(
                f"round_trip_efficiency must be in (0, 1], got {round_trip_efficiency}"
            )
        if not 0.0 <= self_discharge_per_day < 1.0:
            raise ValueError(
                f"self_discharge_per_day must be in [0, 1), got {self_discharge_per_day}"
            )
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")
        self.capacity_wh = capacity_wh
        self._one_way_efficiency = math.sqrt(round_trip_efficiency)
        self.self_discharge_per_day = self_discharge_per_day
        self._stored_wh = initial_soc * capacity_wh
        self._charge_cycles_wh = 0.0

    @property
    def stored_wh(self) -> float:
        """Currently stored energy [Wh]."""
        return self._stored_wh

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._stored_wh / self.capacity_wh

    @property
    def throughput_wh(self) -> float:
        """Cumulative energy pushed into the battery [Wh] (aging proxy)."""
        return self._charge_cycles_wh

    def charge(self, power_w: float, dt_minutes: float) -> float:
        """Push ``power_w`` into the battery for ``dt_minutes``.

        Returns the energy actually *stored* [Wh]; excess beyond capacity is
        rejected (the charge controller curtails the panel).
        """
        if power_w < 0:
            raise ValueError(f"power must be >= 0, got {power_w}")
        offered_wh = power_w * dt_minutes / 60.0 * self._one_way_efficiency
        accepted_wh = min(offered_wh, self.capacity_wh - self._stored_wh)
        self._stored_wh += accepted_wh
        self._charge_cycles_wh += accepted_wh
        return accepted_wh

    def discharge(self, power_w: float, dt_minutes: float) -> float:
        """Draw ``power_w`` from the battery for ``dt_minutes``.

        Returns the energy actually *delivered* to the load [Wh]; the battery
        cannot deliver more than it stores.
        """
        if power_w < 0:
            raise ValueError(f"power must be >= 0, got {power_w}")
        requested_wh = power_w * dt_minutes / 60.0
        deliverable_wh = self._stored_wh * self._one_way_efficiency
        delivered_wh = min(requested_wh, deliverable_wh)
        self._stored_wh -= delivered_wh / self._one_way_efficiency
        return delivered_wh

    def decay(self, dt_minutes: float) -> None:
        """Apply self-discharge over an interval."""
        if dt_minutes < 0:
            raise ValueError(f"dt_minutes must be >= 0, got {dt_minutes}")
        daily_keep = 1.0 - self.self_discharge_per_day
        self._stored_wh *= daily_keep ** (dt_minutes / (24.0 * 60.0))


class BatteryEquippedSystem:
    """The paper's battery-based comparison system (Figure 2-C).

    The MPPT charge controller tracks the panel's MPP perfectly; the chain
    de-rating (Table 3) scales what the load ultimately receives.

    Args:
        array: The PV array.
        level: De-rating level name (``high``/``moderate``/``low``) or a
            custom :class:`DeratingLevel`.
    """

    def __init__(self, array: PVArray, level: str | DeratingLevel = "high") -> None:
        self.array = array
        if isinstance(level, str):
            try:
                level = BATTERY_LEVELS[level]
            except KeyError:
                raise KeyError(
                    f"unknown battery level {level!r}; known: "
                    f"{', '.join(BATTERY_LEVELS)}"
                ) from None
        self.level = level

    def mpp_power_series(self, trace: EnvironmentTrace) -> np.ndarray:
        """Panel MPP power [W] at every sample of a day trace."""
        powers = np.empty(len(trace.minutes))
        for i, (g, t_amb) in enumerate(zip(trace.irradiance, trace.ambient_c)):
            t_cell = self.array.cell_temperature_from_ambient(float(g), float(t_amb))
            powers[i] = find_mpp(self.array, float(g), t_cell).power
        return powers

    def harvestable_energy_wh(self, trace: EnvironmentTrace) -> float:
        """Usable daily solar energy [Wh] after the de-rating chain."""
        powers = self.mpp_power_series(trace)
        hours = trace.minutes / 60.0
        raw_wh = float(np.trapezoid(powers, hours))
        return raw_wh * self.level.overall
