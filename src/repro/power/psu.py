"""Power-delivery path: automatic transfer switch, UPS, and PSU rails.

Paper Figure 8: the processor is fed from the solar panel through the DC/DC
matching network; when solar supply drops below the power-transfer threshold
an automatic transfer switch (ATS) falls back to grid utility (through an
AC/DC stage), and an uninterruptible supply bridges the switchover.  Only the
processor rail is solar-powered; the rest of the system always runs from the
utility.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["PowerSource", "AutomaticTransferSwitch", "PowerSupplyUnit", "EnergyLedger"]

log = logging.getLogger(__name__)


class PowerSource(Enum):
    """Which supply currently feeds the processor rail."""

    SOLAR = "solar"
    UTILITY = "utility"


class AutomaticTransferSwitch:
    """Selects between the solar panel and the grid with hysteresis.

    The switch engages the panel when its available (MPP) power exceeds the
    load's minimum sustainable draw by ``margin_fraction``; it releases back
    to the utility when available power falls below that minimum.  The small
    hysteresis band prevents chattering on cloud edges.

    Args:
        margin_fraction: Extra headroom (fraction of the minimum load power)
            required before switching *to* solar.
    """

    def __init__(self, margin_fraction: float = 0.05) -> None:
        if margin_fraction < 0:
            raise ValueError(f"margin_fraction must be >= 0, got {margin_fraction}")
        self.margin_fraction = margin_fraction
        self._source = PowerSource.UTILITY
        self._switch_count = 0

    @property
    def source(self) -> PowerSource:
        """Currently selected supply."""
        return self._source

    @property
    def switch_count(self) -> int:
        """Number of transfers performed so far."""
        return self._switch_count

    def update(self, available_solar_w: float, min_load_w: float) -> PowerSource:
        """Re-evaluate the selection given current supply and load floors.

        Args:
            available_solar_w: Panel maximum (MPP) power right now [W].
            min_load_w: The load's minimum sustainable power draw [W].

        Returns:
            The (possibly changed) active source.
        """
        engage_at = min_load_w * (1.0 + self.margin_fraction)
        if self._source is PowerSource.UTILITY and available_solar_w >= engage_at:
            self._source = PowerSource.SOLAR
            self._switch_count += 1
            log.debug(
                "ATS -> solar (available %.1f W >= engage %.1f W)",
                available_solar_w, engage_at,
            )
        elif self._source is PowerSource.SOLAR and available_solar_w < min_load_w:
            self._source = PowerSource.UTILITY
            self._switch_count += 1
            log.debug(
                "ATS -> utility (available %.1f W < floor %.1f W)",
                available_solar_w, min_load_w,
            )
        return self._source


@dataclass
class EnergyLedger:
    """Accumulates energy drawn from each supply [Wh].

    Attributes:
        solar_wh: Energy delivered by the panel.
        utility_wh: Energy delivered by the grid.
    """

    solar_wh: float = 0.0
    utility_wh: float = 0.0

    def add(self, source: PowerSource, power_w: float, dt_minutes: float) -> None:
        """Account ``power_w`` drawn from ``source`` for ``dt_minutes``."""
        if power_w < 0:
            raise ValueError(f"power must be >= 0, got {power_w}")
        energy_wh = power_w * dt_minutes / 60.0
        if source is PowerSource.SOLAR:
            self.solar_wh += energy_wh
        else:
            self.utility_wh += energy_wh

    @property
    def total_wh(self) -> float:
        """Total energy from both supplies."""
        return self.solar_wh + self.utility_wh


@dataclass
class PowerSupplyUnit:
    """A multi-rail PSU front-ending the processor VRMs.

    Today's PSUs expose several output rails (paper Section 4.1); here the
    12 V processor rail is the solar-fed one and carries ``rail_efficiency``
    conversion loss, while auxiliary rails stay on the utility.

    Attributes:
        rail_voltage: Processor rail voltage [V].
        rail_efficiency: Rail conversion efficiency in (0, 1].
        ats: The transfer switch selecting the rail's upstream source.
        ledger: Per-source energy accounting.
    """

    rail_voltage: float = 12.0
    rail_efficiency: float = 1.0
    ats: AutomaticTransferSwitch = field(default_factory=AutomaticTransferSwitch)
    ledger: EnergyLedger = field(default_factory=EnergyLedger)

    def __post_init__(self) -> None:
        if self.rail_voltage <= 0:
            raise ValueError(f"rail_voltage must be positive, got {self.rail_voltage}")
        if not 0.0 < self.rail_efficiency <= 1.0:
            raise ValueError(
                f"rail_efficiency must be in (0, 1], got {self.rail_efficiency}"
            )

    def deliver(self, load_w: float, dt_minutes: float) -> float:
        """Deliver ``load_w`` to the processor for ``dt_minutes``.

        Returns the upstream power drawn (load over rail efficiency) and
        books it against the active source.
        """
        upstream = load_w / self.rail_efficiency
        self.ledger.add(self.ats.source, upstream, dt_minutes)
        return upstream
