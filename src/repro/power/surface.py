"""Precomputed operating-point / MPP lookup surfaces (ROADMAP item 1).

The exact solvers (:func:`repro.pv.mpp.find_mpp`,
:func:`repro.power.operating_point.solve_operating_point`) are Brent /
golden-section searches over the Lambert-W diode model — hundreds of
microseconds per call, ~830 calls per simulated day.  This module
tabulates their answers once over the whole physically reachable domain
and serves every later query as an O(1) multilinear interpolation:

* **MPP surface** — ``Pmpp``, ``Vmpp``, ``Voc`` on a (ln G, T) grid.
  ``ln Pmpp`` is nearly affine in ``ln G`` and ``T``, so bilinear
  interpolation in those coordinates is accurate to ~1e-5 relative.
* **Operating-point surface** — the coupled PV-converter-load
  equilibrium depends on (G, T, k, R_load) only through the *reflected
  resistance* ``rho = k^2 * eta * R`` (the load line ``I = V/rho``), so
  one 3-D table covers every converter setting and load.  The third
  axis is ``ln(rho / rho_mpp(G, T))`` with ``rho_mpp = Vmpp^2/Pmpp``:
  normalizing by the MPP resistance pins the I-V knee to a fixed grid
  location for every (G, T), and the stored value is the logit
  ``ln(V / (Voc - V))``, which is asymptotically *linear* in the axis
  coordinate on both the current-source and diode wings.  Together
  these buy an order of magnitude of interpolation accuracy over a
  raw ``ln rho`` axis storing ``V/Voc``.  The query returns
  ``I = V/rho`` exactly on the load line.
* **Right-branch surface** — the controller's rail-alignment root
  ``P(V) = p_frac * Pmpp`` on the diode-side branch ``[Vmpp, Voc]``,
  tabulated over (ln G, T, p_frac).

Every surface carries a *measured* error report: after construction the
tables are compared against the exact solvers on a seeded random sample
and the maximum observed relative errors — times a safety factor —
become the surface's **declared error bound**, asserted by the
Hypothesis property suite on fresh draws.  Queries outside the
tabulated domain (or on dark panels, or for devices the closed form
cannot represent) fall back to the exact solvers and count
``surface.fallbacks``; the tables never extrapolate.

Persistence is content-addressed like
:class:`~repro.harness.parallel.DiskResultCache`: the ``.npz`` file
name is a SHA-256 over the surface format version, the PV/converter
model *source files*, the device's electrical identity, and the grid
spec — change any of them and the old table can never be read again.
Set ``SOLARCORE_SURFACE_DIR`` to persist tables across processes;
without it each process builds (once) in memory.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import math
import os
import tempfile
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np
from scipy.optimize import brentq

from repro.power.operating_point import OperatingPoint, solve_operating_point
from repro.pv.mpp import MaxPowerPoint, find_mpp
from repro.pv.vector import VectorizedDevice, device_scaling, lambertw_of_exp_array
from repro.telemetry import hub as telemetry_hub

__all__ = [
    "SURFACE_FORMAT_VERSION",
    "SurfaceSpec",
    "OperatingSurfaces",
    "get_surfaces",
    "model_fingerprint",
    "surface_key",
]

log = logging.getLogger(__name__)

#: Bump to invalidate every persisted surface (layout or semantic changes
#: that do not show up in the model source fingerprint).
SURFACE_FORMAT_VERSION = 1

#: Environment variable naming the directory persisted surfaces live in.
SURFACE_DIR_ENV = "SOLARCORE_SURFACE_DIR"

#: Safety factor between the measured max error and the declared bound.
_BOUND_SAFETY = 3.0

#: Floor under declared bounds (a measured zero still declares a bound).
_BOUND_FLOOR = 1e-7

#: Seed for the build-time error measurement sample.
_ERROR_SAMPLE_SEED = 20260808


@dataclass(frozen=True)
class SurfaceSpec:
    """Grid geometry of one surface set.

    The G and rho axes are log-uniform (the physics is closer to affine
    in log coordinates), T and p_frac are uniform.  The defaults cover
    every value the weather traces, chip load range, and converter
    clamp can produce; queries outside fall back to the exact solvers.

    Attributes:
        g_min: Lowest tabulated irradiance [W/m^2] (> 0; darker panels
            short-circuit to the exact zero-power answers).
        g_max: Highest tabulated irradiance [W/m^2].
        t_min: Lowest tabulated cell temperature [C].
        t_max: Highest tabulated cell temperature [C].
        ln_rho_norm_min: Lowest tabulated ``ln(rho / rho_mpp)``.
        ln_rho_norm_max: Highest tabulated ``ln(rho / rho_mpp)``.
        pfrac_max: Highest tabulated right-branch power fraction.
        n_g: Irradiance nodes.
        n_t: Temperature nodes.
        n_rho: Reflected-resistance nodes.
        n_pfrac: Power-fraction nodes.
        error_samples: Random draws per table in the build-time error
            measurement.
    """

    g_min: float = 1.0
    g_max: float = 1500.0
    t_min: float = -30.0
    t_max: float = 90.0
    ln_rho_norm_min: float = -12.0
    ln_rho_norm_max: float = 12.0
    pfrac_max: float = 0.985
    n_g: int = 44
    n_t: int = 30
    n_rho: int = 192
    n_pfrac: int = 28
    error_samples: int = 512

    def __post_init__(self) -> None:
        if not 0.0 < self.g_min < self.g_max:
            raise ValueError(f"need 0 < g_min < g_max, got [{self.g_min}, {self.g_max}]")
        if not self.t_min < self.t_max:
            raise ValueError(f"need t_min < t_max, got [{self.t_min}, {self.t_max}]")
        if not self.ln_rho_norm_min < self.ln_rho_norm_max:
            raise ValueError(
                "need ln_rho_norm_min < ln_rho_norm_max, got "
                f"[{self.ln_rho_norm_min}, {self.ln_rho_norm_max}]"
            )
        if not 0.0 < self.pfrac_max < 1.0:
            raise ValueError(f"pfrac_max must be in (0, 1), got {self.pfrac_max}")
        for name in ("n_g", "n_t", "n_rho", "n_pfrac"):
            if getattr(self, name) < 4:
                raise ValueError(f"{name} must be >= 4, got {getattr(self, name)}")

    def key(self) -> str:
        """A stable textual identity of the grid geometry."""
        return json.dumps(asdict(self), sort_keys=True)


#: Model source files hashed into every surface fingerprint: the modules
#: whose math determines a table's values.  The whole-package
#: ``code_fingerprint`` would also work but would invalidate surfaces on
#: every unrelated edit; this scoped set invalidates exactly when the
#: tabulated physics can change.
_MODEL_MODULES = (
    "pv/params.py",
    "pv/cell.py",
    "pv/module.py",
    "pv/array.py",
    "pv/mpp.py",
    "pv/vector.py",
    "power/converter.py",
    "power/operating_point.py",
    "power/surface.py",
)


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """SHA-256 over the PV/converter model sources (scoped invalidation)."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for rel in _MODEL_MODULES:
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update((package_root / rel).read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def surface_key(device_key: str, spec: SurfaceSpec) -> str:
    """The content address of one surface set (format|model|device|grid)."""
    return hashlib.sha256(
        f"{SURFACE_FORMAT_VERSION}|{model_fingerprint()}|{device_key}|{spec.key()}".encode()
    ).hexdigest()


def _bisect_current_root(
    vd: VectorizedDevice,
    lo: np.ndarray,
    hi: np.ndarray,
    target: "callable",
    iterations: int = 50,
) -> np.ndarray:
    """Vectorized bisection of ``f(v) = target(v)`` with f(lo)>0>f(hi).

    ``target`` maps a voltage array to the signed mismatch; the bracket
    arrays are consumed (copied internally).
    """
    lo = lo.copy()
    hi = hi.copy()
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        pos = target(mid) > 0.0
        lo = np.where(pos, mid, lo)
        hi = np.where(pos, hi, mid)
    return 0.5 * (lo + hi)


class _CellTerms:
    """Hoisted per-(G, T) diode terms for repeated voltage evaluations.

    Bisection evaluates the device current ~50 times on the same (G, T)
    mesh; everything except the Lambert-W term is voltage-independent,
    so compute it once.
    """

    def __init__(self, vd: VectorizedDevice, g: np.ndarray, t: np.ndarray) -> None:
        self.vd = vd
        self.vt = vd.thermal_voltage(t)
        self.iph = vd.photocurrent(g, t)
        self.i0 = vd.saturation_current(t)
        p = vd.cell
        self.rs = p.series_resistance
        if self.rs > 0.0:
            self.log_base = np.log(self.i0 * self.rs / self.vt)
            self.rs_term = (self.iph + self.i0) * self.rs
        self.inv_vt = 1.0 / self.vt

    def current(self, voltage: np.ndarray) -> np.ndarray:
        """Device current [A] at device voltage, reusing hoisted terms."""
        v_cell = voltage / self.vd.ns_total
        if self.rs == 0.0:
            i_cell = self.iph - self.i0 * np.expm1(v_cell * self.inv_vt)
        else:
            log_arg = self.log_base + (v_cell + self.rs_term) * self.inv_vt
            i_cell = self.iph + self.i0 - (self.vt / self.rs) * lambertw_of_exp_array(
                log_arg
            )
        return i_cell * self.vd.np_total

    def power(self, voltage: np.ndarray) -> np.ndarray:
        return voltage * self.current(voltage)


class OperatingSurfaces:
    """Interpolated MPP / operating-point / right-branch tables.

    Build with :meth:`build` (or load through :func:`get_surfaces`);
    query with :meth:`mpp`, :meth:`operating_point`,
    :meth:`right_branch_voltage`, and the vectorized :meth:`mpp_arrays`.
    Every query that cannot be answered from the tables is delegated to
    the exact solvers on ``self.device`` and counted in
    :attr:`fallbacks` (plus the ``surface.fallbacks`` profiler counter),
    so fast mode degrades to slow-but-right, never to wrong.
    """

    def __init__(
        self,
        device,
        vectorized: VectorizedDevice,
        spec: SurfaceSpec,
        *,
        vmpp: np.ndarray,
        ln_pmpp: np.ndarray,
        voc: np.ndarray,
        vnorm: np.ndarray,
        vright: np.ndarray,
        error_report: dict,
    ) -> None:
        self.device = device
        self.vectorized = vectorized
        self.spec = spec
        self.key = surface_key(vectorized.describe(), spec)
        self.error_report = error_report
        self.lookups = 0
        self.fallbacks = 0
        # One-entry environment memo: within one tracking event the
        # controller issues a dozen queries at the same (G, T), and the
        # axis lookups + MPP/Voc bilinears are identical across them.
        self._env_memo: tuple = (None, None, None)

        self._vmpp = vmpp
        self._ln_pmpp = ln_pmpp
        self._voc = voc
        self._vnorm = vnorm
        self._vright = vright
        # Pure-python nested lists for the scalar hot path: element access
        # is ~5x cheaper than going through numpy scalar boxing.
        self._vmpp_l = vmpp.tolist()
        self._ln_pmpp_l = ln_pmpp.tolist()
        self._voc_l = voc.tolist()
        self._vnorm_l = vnorm.tolist()
        self._vright_l = vright.tolist()

        s = spec
        self._ln_g0 = math.log(s.g_min)
        self._dln_g = (math.log(s.g_max) - self._ln_g0) / (s.n_g - 1)
        self._t0 = s.t_min
        self._dt = (s.t_max - s.t_min) / (s.n_t - 1)
        self._x0 = s.ln_rho_norm_min
        self._dx = (s.ln_rho_norm_max - s.ln_rho_norm_min) / (s.n_rho - 1)
        self._dp = s.pfrac_max / (s.n_pfrac - 1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, device, spec: SurfaceSpec | None = None) -> "OperatingSurfaces":
        """Tabulate ``device`` over ``spec``'s grid and measure the error.

        Raises:
            TypeError: ``device`` has no closed-form vectorization (use
                :func:`device_scaling` / :func:`get_surfaces` to probe
                support without raising).
        """
        vd = device_scaling(device)
        if vd is None:
            raise TypeError(
                f"{type(device).__name__} cannot be tabulated: no closed-form "
                "vectorization (fault injectors and shaded strings must use "
                "the exact solvers)"
            )
        spec = spec or SurfaceSpec()

        g_nodes = np.exp(
            np.linspace(math.log(spec.g_min), math.log(spec.g_max), spec.n_g)
        )
        t_nodes = np.linspace(spec.t_min, spec.t_max, spec.n_t)
        g2 = g_nodes[:, None]
        t2 = t_nodes[None, :]
        terms2 = _CellTerms(vd, g2, t2)
        voc = vd.open_circuit_voltage(g2, t2)  # (n_g, n_t)

        # -- MPP via golden-section maximization of P(V) on [0, Voc] ----
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        lo = np.zeros_like(voc)
        hi = voc.copy()
        for _ in range(72):  # 0.618^72 ~ 8e-16: exhausts float64
            c = hi - (hi - lo) * inv_phi
            d = lo + (hi - lo) * inv_phi
            keep_low = terms2.power(c) > terms2.power(d)
            hi = np.where(keep_low, d, hi)
            lo = np.where(keep_low, lo, c)
        vmpp = 0.5 * (lo + hi)
        pmpp = terms2.power(vmpp)

        # -- operating point: I(V) = V/rho on (0, Voc), per rho node ----
        # The rho axis is normalized by each node's MPP resistance
        # Vmpp^2/Pmpp, pinning the I-V knee to a fixed grid location.
        x_nodes = np.linspace(
            spec.ln_rho_norm_min, spec.ln_rho_norm_max, spec.n_rho
        )
        g3 = g_nodes[:, None, None]
        t3 = t_nodes[None, :, None]
        terms3 = _CellTerms(vd, g3, t3)
        rho_mpp = vmpp * vmpp / pmpp  # (n_g, n_t)
        rho3 = np.exp(x_nodes)[None, None, :] * rho_mpp[:, :, None]
        voc3 = voc[:, :, None]
        v_op = _bisect_current_root(
            vd,
            np.zeros(np.broadcast_shapes(voc3.shape, rho3.shape)),
            np.broadcast_to(voc3, np.broadcast_shapes(voc3.shape, rho3.shape)),
            lambda v: terms3.current(v) - v / rho3,
        )
        # Logit of V/Voc: linear in the axis coordinate on both wings.
        vnorm = np.log(v_op / (voc3 - v_op))

        # -- right branch: P(V) = pfrac * Pmpp on [Vmpp, Voc] -----------
        pfrac_nodes = np.linspace(0.0, spec.pfrac_max, spec.n_pfrac)
        target3 = pmpp[:, :, None] * pfrac_nodes[None, None, :]
        vmpp3 = np.broadcast_to(
            vmpp[:, :, None], pmpp.shape + (spec.n_pfrac,)
        )
        voc_b = np.broadcast_to(voc3, vmpp3.shape)
        v_right = _bisect_current_root(
            vd,
            vmpp3.copy(),
            voc_b.copy(),
            lambda v: terms3.power(v) - target3,
        )
        vright = v_right / voc3

        surfaces = cls(
            device,
            vd,
            spec,
            vmpp=vmpp,
            ln_pmpp=np.log(pmpp),
            voc=voc,
            vnorm=vnorm,
            vright=vright,
            error_report={},
        )
        surfaces.error_report = surfaces._measure_error()
        return surfaces

    def _measure_error(self) -> dict:
        """Compare the tables to the exact solvers on a seeded sample.

        Returns the report dict stored on the surface: the measured
        maxima plus the declared bounds (measured x safety factor).
        """
        s = self.spec
        n = s.error_samples
        rng = np.random.default_rng(_ERROR_SAMPLE_SEED)
        g = np.exp(rng.uniform(math.log(s.g_min), math.log(s.g_max), n))
        t = rng.uniform(s.t_min, s.t_max, n)
        x = rng.uniform(s.ln_rho_norm_min, s.ln_rho_norm_max, n)
        pfrac = rng.uniform(0.0, s.pfrac_max, n)

        mpp_power_rel = 0.0
        mpp_voltage_rel = 0.0
        op_power_rel = 0.0
        right_power_rel = 0.0
        device = self.device
        for i in range(n):
            gi, ti = float(g[i]), float(t[i])
            exact = find_mpp(device, gi, ti)
            p_t, v_t, _ = self._mpp_interp(gi, ti)
            mpp_power_rel = max(mpp_power_rel, abs(p_t - exact.power) / exact.power)
            mpp_voltage_rel = max(
                mpp_voltage_rel, abs(v_t - exact.voltage) / exact.voltage
            )

            # Exact coupled solve directly on the load line I = V/rho.
            voc = device.open_circuit_voltage(gi, ti)
            r = math.exp(float(x[i])) * v_t * v_t / p_t
            v_exact = brentq(
                lambda v: device.current(v, gi, ti) - v / r,
                1e-9,
                voc,
                xtol=1e-9,
                rtol=1e-12,
            )
            p_exact = v_exact * v_exact / r
            v_tab = self._vnorm_interp(gi, ti, r) * self._voc_interp(gi, ti)
            p_tab = v_tab * v_tab / r
            op_power_rel = max(op_power_rel, abs(p_tab - p_exact) / max(p_exact, 1e-12))

            # Right branch: the controller cares about delivered power
            # at the interpolated voltage, relative to the panel's max.
            target = float(pfrac[i]) * p_t
            v_r = self._vright_interp(gi, ti, target / p_t)
            p_at = device.power(v_r, gi, ti)
            right_power_rel = max(right_power_rel, abs(p_at - target) / exact.power)

        measured = {
            "mpp_power_rel": mpp_power_rel,
            "mpp_voltage_rel": mpp_voltage_rel,
            "op_power_rel": op_power_rel,
            "right_branch_power_rel": right_power_rel,
        }
        declared = {
            name: max(value * _BOUND_SAFETY, _BOUND_FLOOR)
            for name, value in measured.items()
        }
        return {"samples": n, "measured": measured, "declared": declared}

    # ------------------------------------------------------------------
    # Interpolation primitives (scalar, pure python on nested lists)
    # ------------------------------------------------------------------
    def _g_axis(self, irradiance: float) -> tuple[int, float] | None:
        x = (math.log(irradiance) - self._ln_g0) / self._dln_g
        if x < 0.0 or x > self.spec.n_g - 1:
            return None
        i = int(x)
        if i >= self.spec.n_g - 1:
            i = self.spec.n_g - 2
        return i, x - i

    def _t_axis(self, temperature_c: float) -> tuple[int, float] | None:
        x = (temperature_c - self._t0) / self._dt
        if x < 0.0 or x > self.spec.n_t - 1:
            return None
        i = int(x)
        if i >= self.spec.n_t - 1:
            i = self.spec.n_t - 2
        return i, x - i

    def _r_axis(self, ln_rho_norm: float) -> tuple[int, float] | None:
        x = (ln_rho_norm - self._x0) / self._dx
        if x < 0.0 or x > self.spec.n_rho - 1:
            return None
        i = int(x)
        if i >= self.spec.n_rho - 1:
            i = self.spec.n_rho - 2
        return i, x - i

    def _p_axis(self, pfrac: float) -> tuple[int, float] | None:
        x = pfrac / self._dp
        if x < 0.0 or x > self.spec.n_pfrac - 1:
            return None
        i = int(x)
        if i >= self.spec.n_pfrac - 1:
            i = self.spec.n_pfrac - 2
        return i, x - i

    @staticmethod
    def _bilinear(table: list, ig: int, fg: float, it: int, ft: float) -> float:
        row0 = table[ig]
        row1 = table[ig + 1]
        c0 = row0[it] * (1.0 - ft) + row0[it + 1] * ft
        c1 = row1[it] * (1.0 - ft) + row1[it + 1] * ft
        return c0 * (1.0 - fg) + c1 * fg

    @staticmethod
    def _trilinear(
        table: list, ig: int, fg: float, it: int, ft: float, ik: int, fk: float
    ) -> float:
        fk1 = 1.0 - fk
        p00 = table[ig][it]
        p01 = table[ig][it + 1]
        p10 = table[ig + 1][it]
        p11 = table[ig + 1][it + 1]
        c00 = p00[ik] * fk1 + p00[ik + 1] * fk
        c01 = p01[ik] * fk1 + p01[ik + 1] * fk
        c10 = p10[ik] * fk1 + p10[ik + 1] * fk
        c11 = p11[ik] * fk1 + p11[ik + 1] * fk
        ft1 = 1.0 - ft
        return (c00 * ft1 + c01 * ft) * (1.0 - fg) + (c10 * ft1 + c11 * ft) * fg

    def _bicubic_x(
        self, table: list, ig: int, fg: float, it: int, ft: float, ik: int, fk: float
    ) -> float:
        """Bilinear over (G, T), Catmull-Rom cubic along the last axis.

        The rho axis carries all the hard curvature (the I-V knee);
        cubic interpolation there is O(h^4) where trilinear is O(h^2).
        Boundary cells degrade to linear — the wings are affine anyway.
        """
        n = len(table[0][0])
        if ik < 1 or ik > n - 3:
            return self._trilinear(table, ig, fg, it, ft, ik, fk)
        f2 = fk * fk
        f3 = f2 * fk
        wm = -0.5 * f3 + f2 - 0.5 * fk
        w0 = 1.5 * f3 - 2.5 * f2 + 1.0
        w1 = -1.5 * f3 + 2.0 * f2 + 0.5 * fk
        w2 = 0.5 * f3 - 0.5 * f2
        km = ik - 1
        k1 = ik + 1
        k2 = ik + 2
        p00 = table[ig][it]
        p01 = table[ig][it + 1]
        p10 = table[ig + 1][it]
        p11 = table[ig + 1][it + 1]
        c00 = wm * p00[km] + w0 * p00[ik] + w1 * p00[k1] + w2 * p00[k2]
        c01 = wm * p01[km] + w0 * p01[ik] + w1 * p01[k1] + w2 * p01[k2]
        c10 = wm * p10[km] + w0 * p10[ik] + w1 * p10[k1] + w2 * p10[k2]
        c11 = wm * p11[km] + w0 * p11[ik] + w1 * p11[k1] + w2 * p11[k2]
        ft1 = 1.0 - ft
        return (c00 * ft1 + c01 * ft) * (1.0 - fg) + (c10 * ft1 + c11 * ft) * fg

    def _mpp_interp(self, g: float, t: float) -> tuple[float, float, float]:
        """(Pmpp, Vmpp, Voc) interpolated at an in-domain (G, T)."""
        ig, fg = self._g_axis(g)
        it, ft = self._t_axis(t)
        power = math.exp(self._bilinear(self._ln_pmpp_l, ig, fg, it, ft))
        voltage = self._bilinear(self._vmpp_l, ig, fg, it, ft)
        voc = self._bilinear(self._voc_l, ig, fg, it, ft)
        return power, voltage, voc

    def _voc_interp(self, g: float, t: float) -> float:
        ig, fg = self._g_axis(g)
        it, ft = self._t_axis(t)
        return self._bilinear(self._voc_l, ig, fg, it, ft)

    def _vnorm_interp(self, g: float, t: float, rho: float) -> float:
        ig, fg = self._g_axis(g)
        it, ft = self._t_axis(t)
        pmpp, vmpp, _ = self._mpp_interp(g, t)
        ir, fr = self._r_axis(math.log(rho * pmpp / (vmpp * vmpp)))
        logit = self._bicubic_x(self._vnorm_l, ig, fg, it, ft, ir, fr)
        return 1.0 / (1.0 + math.exp(-logit))

    def _vright_interp(self, g: float, t: float, pfrac: float) -> float:
        ig, fg = self._g_axis(g)
        it, ft = self._t_axis(t)
        ip, fp = self._p_axis(pfrac)
        voc = self._bilinear(self._voc_l, ig, fg, it, ft)
        return self._trilinear(self._vright_l, ig, fg, it, ft, ip, fp) * voc

    def _env(
        self, irradiance: float, cell_temp_c: float
    ) -> tuple[int, float, int, float, float, float, float] | None:
        """Frozen-environment bundle ``(ig, fg, it, ft, Pmpp, Vmpp, Voc)``.

        ``None`` means (G, T) left the tabulated domain.  Memoized one
        entry deep; every cached value is produced by the same expression
        as the inline lookups it replaces, so reuse is bit-identical.
        """
        memo = self._env_memo
        if memo[0] == irradiance and memo[1] == cell_temp_c:
            return memo[2]
        ax_g = self._g_axis(irradiance)
        ax_t = self._t_axis(cell_temp_c)
        if ax_g is None or ax_t is None:
            env = None
        else:
            ig, fg = ax_g
            it, ft = ax_t
            pmpp = math.exp(self._bilinear(self._ln_pmpp_l, ig, fg, it, ft))
            vmpp = self._bilinear(self._vmpp_l, ig, fg, it, ft)
            voc = self._bilinear(self._voc_l, ig, fg, it, ft)
            env = (ig, fg, it, ft, pmpp, vmpp, voc)
        self._env_memo = (irradiance, cell_temp_c, env)
        return env

    def _note_fallback(self) -> None:
        self.fallbacks += 1
        prof = telemetry_hub.current().profile
        if prof.enabled:
            prof.count("surface.fallbacks")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mpp(self, irradiance: float, temperature_c: float) -> MaxPowerPoint:
        """The MPP at (G, T): interpolated in domain, exact outside.

        Dark panels (``G <= 0``) return the same zero-power point as
        :func:`find_mpp`, bit for bit.
        """
        if irradiance <= 0.0:
            return MaxPowerPoint(0.0, 0.0, 0.0, irradiance, temperature_c)
        self.lookups += 1
        env = self._env(irradiance, temperature_c)
        if env is None:
            self._note_fallback()
            return find_mpp(self.device, irradiance, temperature_c)
        power = env[4]
        voltage = env[5]
        return MaxPowerPoint(
            voltage=voltage,
            current=power / voltage,
            power=power,
            irradiance=irradiance,
            temperature_c=temperature_c,
        )

    def operating_point(
        self,
        converter,
        load_resistance: float,
        irradiance: float,
        cell_temp_c: float,
    ) -> OperatingPoint:
        """The coupled equilibrium: interpolated in domain, exact outside.

        The returned current sits exactly on the load line
        (``I = V / rho``), so interpolated power is consistent with the
        chip-side resistance the caller supplied.
        """
        if irradiance <= 0.0:
            return OperatingPoint(0.0, 0.0, 0.0, 0.0)
        if (
            load_resistance <= 0.0
            or math.isnan(load_resistance)
            or math.isnan(irradiance)
            or math.isnan(cell_temp_c)
        ):
            # Exact path owns the error contract for degenerate inputs.
            return solve_operating_point(
                self.device, converter, load_resistance, irradiance, cell_temp_c
            )
        self.lookups += 1
        env = self._env(irradiance, cell_temp_c)
        if env is None:
            self._note_fallback()
            return solve_operating_point(
                self.device, converter, load_resistance, irradiance, cell_temp_c
            )
        ig, fg, it, ft, pmpp, vmpp, voc = env
        if load_resistance == float("inf"):
            return OperatingPoint(voc, 0.0, converter.output_voltage(voc), 0.0)
        rho = converter.reflected_resistance(load_resistance)
        ax_r = self._r_axis(math.log(rho * pmpp / (vmpp * vmpp)))
        if ax_r is None:
            self._note_fallback()
            return solve_operating_point(
                self.device, converter, load_resistance, irradiance, cell_temp_c
            )
        ir, fr = ax_r
        logit = self._bicubic_x(self._vnorm_l, ig, fg, it, ft, ir, fr)
        v_pv = voc / (1.0 + math.exp(-logit))
        i_pv = v_pv / rho
        return OperatingPoint(
            pv_voltage=v_pv,
            pv_current=i_pv,
            output_voltage=converter.output_voltage(v_pv),
            output_current=converter.output_current(i_pv),
        )

    def right_branch_voltage(
        self,
        irradiance: float,
        cell_temp_c: float,
        mpp_power: float,
        target_power: float,
    ) -> float | None:
        """The V > Vmpp solving ``P(V) = target_power``, or None.

        ``None`` means the query left the tabulated domain (the caller
        should run its exact root-find); it is *not* an error.
        """
        if irradiance <= 0.0 or mpp_power <= 0.0:
            return None
        self.lookups += 1
        env = self._env(irradiance, cell_temp_c)
        ax_p = self._p_axis(target_power / mpp_power)
        if env is None or ax_p is None:
            self._note_fallback()
            return None
        ig, fg, it, ft, _, _, voc = env
        ip, fp = ax_p
        return self._trilinear(self._vright_l, ig, fg, it, ft, ip, fp) * voc

    def mpp_arrays(
        self, irradiance: np.ndarray, temperature_c: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized MPP over whole day arrays: ``(Pmpp, Vmpp)``.

        Dark minutes are exactly zero; out-of-domain minutes are solved
        exactly one by one (counted as fallbacks).
        """
        g = np.asarray(irradiance, dtype=np.float64)
        t = np.asarray(temperature_c, dtype=np.float64)
        self.lookups += int(g.size)
        lit = g > 0.0
        safe_g = np.where(lit, g, 1.0)
        gx = (np.log(safe_g) - self._ln_g0) / self._dln_g
        tx = (t - self._t0) / self._dt
        in_dom = (
            lit
            & (gx >= 0.0)
            & (gx <= self.spec.n_g - 1)
            & (tx >= 0.0)
            & (tx <= self.spec.n_t - 1)
        )
        ig = np.clip(gx.astype(np.int64), 0, self.spec.n_g - 2)
        it = np.clip(tx.astype(np.int64), 0, self.spec.n_t - 2)
        fg = np.clip(gx - ig, 0.0, None)
        ft = np.clip(tx - it, 0.0, None)

        def bilin(table: np.ndarray) -> np.ndarray:
            c0 = table[ig, it] * (1.0 - ft) + table[ig, it + 1] * ft
            c1 = table[ig + 1, it] * (1.0 - ft) + table[ig + 1, it + 1] * ft
            return c0 * (1.0 - fg) + c1 * fg

        pmpp = np.where(in_dom, np.exp(bilin(self._ln_pmpp)), 0.0)
        vmpp = np.where(in_dom, bilin(self._vmpp), 0.0)
        outside = lit & ~in_dom
        if outside.any():
            for idx in np.flatnonzero(outside):
                self._note_fallback()
                exact = find_mpp(self.device, float(g.flat[idx]), float(t.flat[idx]))
                pmpp.flat[idx] = exact.power
                vmpp.flat[idx] = exact.voltage
        return pmpp, vmpp

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist the tables under their content address (atomically)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.key}.npz"
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            meta=np.frombuffer(
                json.dumps(
                    {
                        "format": SURFACE_FORMAT_VERSION,
                        "key": self.key,
                        "spec": asdict(self.spec),
                        "device": self.vectorized.describe(),
                        "error_report": self.error_report,
                    }
                ).encode(),
                dtype=np.uint8,
            ),
            vmpp=self._vmpp,
            ln_pmpp=self._ln_pmpp,
            voc=self._voc,
            vnorm=self._vnorm,
            vright=self._vright,
        )
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, device, spec: SurfaceSpec, directory: str | Path) -> "OperatingSurfaces | None":
        """Load the surface for (device, spec) from ``directory``, if present.

        A corrupt or mismatched file is deleted with a warning and
        reported as a miss — the caller rebuilds.
        """
        vd = device_scaling(device)
        if vd is None:
            return None
        key = surface_key(vd.describe(), spec)
        path = Path(directory) / f"{key}.npz"
        if not path.is_file():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"].tobytes()).decode())
                if meta["format"] != SURFACE_FORMAT_VERSION:
                    raise ValueError(
                        f"surface format {meta['format']} != {SURFACE_FORMAT_VERSION}"
                    )
                if meta["key"] != key:
                    raise ValueError("surface key mismatch")
                return cls(
                    device,
                    vd,
                    spec,
                    vmpp=data["vmpp"],
                    ln_pmpp=data["ln_pmpp"],
                    voc=data["voc"],
                    vnorm=data["vnorm"],
                    vright=data["vright"],
                    error_report=meta["error_report"],
                )
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            log.warning(
                "persisted surface %s is unreadable (%s); deleting and rebuilding",
                path,
                exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def report(self) -> str:
        """The error contract as human-readable lines (CI artifact body)."""
        rep = self.error_report
        lines = [
            f"surface {self.key[:16]}  grid "
            f"{self.spec.n_g}x{self.spec.n_t} (MPP), "
            f"{self.spec.n_g}x{self.spec.n_t}x{self.spec.n_rho} (operating point), "
            f"{self.spec.n_g}x{self.spec.n_t}x{self.spec.n_pfrac} (right branch)",
            f"device {self.vectorized.describe()}",
            f"error sample: {rep.get('samples', 0)} seeded random draws per table",
        ]
        for name in sorted(rep.get("measured", {})):
            lines.append(
                f"  {name:24s} measured {rep['measured'][name]:.3e}  "
                f"declared {rep['declared'][name]:.3e}"
            )
        lines.append(f"lookups {self.lookups}  exact fallbacks {self.fallbacks}")
        return "\n".join(lines)


#: In-process registry: one surface set per (model, device, spec).
_REGISTRY: dict[str, OperatingSurfaces] = {}


def get_surfaces(
    device,
    spec: SurfaceSpec | None = None,
    cache_dir: str | Path | None = None,
) -> OperatingSurfaces | None:
    """The surface set for ``device``, building or loading on first use.

    Returns None — and logs why, once — when the device has no
    closed-form vectorization; callers then stay on the exact solvers.
    ``cache_dir`` (default: ``$SOLARCORE_SURFACE_DIR``) persists built
    tables across processes.
    """
    vd = device_scaling(device)
    if vd is None:
        log.warning(
            "no operating surface for %s: device has no closed-form "
            "vectorization; using exact solvers",
            type(device).__name__,
        )
        return None
    spec = spec or SurfaceSpec()
    key = surface_key(vd.describe(), spec)
    cached = _REGISTRY.get(key)
    if cached is not None:
        # Reuse the tables but serve fallbacks from the caller's device.
        if cached.device is not device:
            cached.device = device
        return cached

    directory = cache_dir if cache_dir is not None else os.environ.get(SURFACE_DIR_ENV)
    surfaces = None
    if directory:
        surfaces = OperatingSurfaces.load(device, spec, directory)
    if surfaces is None:
        surfaces = OperatingSurfaces.build(device, spec)
        if directory:
            surfaces.save(directory)
    _REGISTRY[key] = surfaces
    return surfaces
