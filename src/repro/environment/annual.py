"""Year-round environment generation by seasonal interpolation.

The paper evaluates four anchor months (Jan/Apr/Jul/Oct).  For annual-yield
studies, the cloud regime and temperature range of any month are obtained
by cyclic linear interpolation between the neighbouring anchors — January's
regime blends toward April's through February and March, and October's
wraps back to January's through November and December.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.environment.irradiance import generate_trace
from repro.environment.locations import EVALUATED_MONTHS, CloudRegime, Location
from repro.environment.trace import EnvironmentTrace

__all__ = ["interpolated_regime", "interpolated_temps", "generate_month_trace",
           "annual_insolation"]

_ANCHORS = EVALUATED_MONTHS  # (1, 4, 7, 10)


def _bracket(month: int) -> tuple[int, int, float]:
    """Surrounding anchor months and the interpolation weight toward the
    later anchor (0 at the earlier anchor, 1 at the later)."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be 1-12, got {month}")
    for i, anchor in enumerate(_ANCHORS):
        nxt = _ANCHORS[(i + 1) % len(_ANCHORS)]
        span = (nxt - anchor) % 12 or 12
        offset = (month - anchor) % 12
        if offset < span:
            return anchor, nxt, offset / span
    raise AssertionError("unreachable: anchors cover the cycle")


def interpolated_regime(location: Location, month: int) -> CloudRegime:
    """The (possibly interpolated) cloud regime of any calendar month."""
    if month in location.regimes:
        return location.regimes[month]
    lo, hi, w = _bracket(month)
    a, b = location.regimes[lo], location.regimes[hi]

    def mix(x: float, y: float) -> float:
        return (1.0 - w) * x + w * y

    return CloudRegime(
        base_clearness=mix(a.base_clearness, b.base_clearness),
        events_per_hour=mix(a.events_per_hour, b.events_per_hour),
        event_depth=mix(a.event_depth, b.event_depth),
        event_minutes=mix(a.event_minutes, b.event_minutes),
        volatility=mix(a.volatility, b.volatility),
    )


def interpolated_temps(location: Location, month: int) -> tuple[float, float]:
    """The (possibly interpolated) (t_min, t_max) of any calendar month."""
    if month in location.temps_c:
        return location.temps_c[month]
    lo, hi, w = _bracket(month)
    a_min, a_max = location.temps_c[lo]
    b_min, b_max = location.temps_c[hi]
    return (
        (1.0 - w) * a_min + w * b_min,
        (1.0 - w) * a_max + w * b_max,
    )


def generate_month_trace(
    location: Location,
    month: int,
    seed: int | None = None,
    step_minutes: float = 1.0,
) -> EnvironmentTrace:
    """Like :func:`repro.environment.irradiance.generate_trace`, for *any*
    month — interpolating regime and temperatures when needed."""
    if month in location.regimes:
        return generate_trace(location, month, seed=seed, step_minutes=step_minutes)
    expanded = replace(
        location,
        regimes={**location.regimes, month: interpolated_regime(location, month)},
        temps_c={**location.temps_c, month: interpolated_temps(location, month)},
    )
    return generate_trace(expanded, month, seed=seed, step_minutes=step_minutes)


def annual_insolation(
    location: Location,
    seed: int | None = None,
    step_minutes: float = 2.0,
) -> dict[int, float]:
    """Mid-month daily insolation [kWh/m^2] for all 12 months."""
    return {
        month: generate_month_trace(
            location, month, seed=seed, step_minutes=step_minutes
        ).daily_insolation_kwh_m2()
        for month in range(1, 13)
    }
