"""Synthetic day-trace generator standing in for NREL MIDC measurements.

``generate_trace(location, month)`` produces one daytime
(7:30 am - 5:30 pm, 1-minute cadence) trace of irradiance and ambient
temperature for a station/month pair: deterministic clear-sky irradiance from
solar geometry, multiplied by a seeded stochastic clearness series, plus the
diurnal temperature cycle.

Seeds default to a stable hash of (station code, month), so every experiment
in the repository sees the same "measured" day unless it asks for another.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.environment.locations import Location
from repro.environment.solar_geometry import clear_sky_poa, mid_month_day_of_year
from repro.environment.temperature import diurnal_temperature
from repro.environment.trace import DAYTIME_END_MIN, DAYTIME_START_MIN, EnvironmentTrace
from repro.environment.weather import clearness_series

__all__ = ["generate_trace", "default_seed"]


def default_seed(location: Location, month: int) -> int:
    """Stable, platform-independent seed for a (station, month) pair."""
    return zlib.crc32(f"{location.code}:{month}".encode())


def generate_trace(
    location: Location,
    month: int,
    seed: int | None = None,
    step_minutes: float = 1.0,
) -> EnvironmentTrace:
    """Generate one daytime environment trace for a station and month.

    Args:
        location: Station (see :mod:`repro.environment.locations`).
        month: Calendar month 1-12.  The paper's anchors {1, 4, 7, 10} use
            their calibrated cloud regimes; other months interpolate
            between the adjacent anchors (see ``Location.regime_for``).
        seed: RNG seed; defaults to a stable hash of (station, month).
        step_minutes: Sampling cadence [minutes].

    Returns:
        An :class:`EnvironmentTrace` spanning 7:30 am - 5:30 pm.
    """
    if not 1 <= month <= 12:
        raise ValueError(f"month must be 1-12, got {month}")
    if step_minutes <= 0:
        raise ValueError(f"step_minutes must be positive, got {step_minutes}")
    if seed is None:
        seed = default_seed(location, month)
    rng = np.random.default_rng(seed)

    minutes = np.arange(DAYTIME_START_MIN, DAYTIME_END_MIN + 1e-9, step_minutes)
    day_of_year = mid_month_day_of_year(month)
    clear_sky = np.array(
        [
            clear_sky_poa(location.latitude_deg, day_of_year, m / 60.0)
            for m in minutes
        ]
    )
    clearness = clearness_series(minutes, location.regime_for(month), rng)
    irradiance = clear_sky * clearness

    t_min, t_max = location.temps_for(month)
    ambient = diurnal_temperature(minutes, t_min, t_max, float(np.mean(clearness)))

    return EnvironmentTrace(
        minutes=minutes,
        irradiance=irradiance,
        ambient_c=ambient,
        label=f"{location.code} month={month} seed={seed}",
    )
