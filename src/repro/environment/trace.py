"""Container for a day-long meteorological trace at fixed sampling cadence.

Plays the role of one day of NREL MIDC measurements: irradiance and ambient
temperature, sampled each minute over the paper's daytime window
(7:30 am - 5:30 pm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnvironmentTrace", "DAYTIME_START_MIN", "DAYTIME_END_MIN"]

#: Paper's daytime evaluation window: 7:30 am, in minutes since midnight.
DAYTIME_START_MIN = 7 * 60 + 30
#: Paper's daytime evaluation window: 5:30 pm, in minutes since midnight.
DAYTIME_END_MIN = 17 * 60 + 30


@dataclass(frozen=True)
class EnvironmentTrace:
    """A sampled (irradiance, ambient temperature) day trace.

    Attributes:
        minutes: Sample times [minutes since midnight], strictly increasing,
            uniformly spaced.
        irradiance: Global horizontal irradiance [W/m^2] per sample.
        ambient_c: Ambient temperature [C] per sample.
        label: Human-readable provenance, e.g. ``"PFCI Jan (seed 42)"``.
    """

    minutes: np.ndarray
    irradiance: np.ndarray
    ambient_c: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        n = len(self.minutes)
        if n < 2:
            raise ValueError("a trace needs at least two samples")
        if len(self.irradiance) != n or len(self.ambient_c) != n:
            raise ValueError(
                f"length mismatch: {n} times, {len(self.irradiance)} irradiance, "
                f"{len(self.ambient_c)} temperature samples"
            )
        steps = np.diff(self.minutes)
        if not np.all(steps > 0):
            raise ValueError("sample times must be strictly increasing")
        if float(np.min(self.irradiance)) < 0.0:
            raise ValueError("irradiance must be non-negative")

    @property
    def step_minutes(self) -> float:
        """Sampling interval [minutes]."""
        return float(self.minutes[1] - self.minutes[0])

    @property
    def duration_minutes(self) -> float:
        """Span of the trace [minutes]."""
        return float(self.minutes[-1] - self.minutes[0])

    def sample(self, minute: float) -> tuple[float, float]:
        """Linearly interpolated (irradiance, ambient_c) at ``minute``.

        Raises:
            ValueError: If ``minute`` lies outside the trace.
        """
        if minute < self.minutes[0] or minute > self.minutes[-1]:
            raise ValueError(
                f"minute {minute} outside trace [{self.minutes[0]}, {self.minutes[-1]}]"
            )
        g = float(np.interp(minute, self.minutes, self.irradiance))
        t = float(np.interp(minute, self.minutes, self.ambient_c))
        return g, t

    def daily_insolation_kwh_m2(self) -> float:
        """Integrated irradiance over the trace [kWh/m^2]."""
        hours = self.minutes / 60.0
        return float(np.trapezoid(self.irradiance, hours)) / 1000.0

    def peak_irradiance(self) -> float:
        """Maximum irradiance sample [W/m^2]."""
        return float(np.max(self.irradiance))
