"""Deterministic solar geometry: declination, hour angle, zenith, clear sky.

This provides the non-stochastic backbone of the synthetic irradiance traces:
given a latitude and a day of the year, the clear-sky global horizontal
irradiance (GHI) follows from sun position and an air-mass attenuation model
(Meinel), peaking near solar noon and vanishing outside daylight.
"""

from __future__ import annotations

import math

__all__ = [
    "declination_deg",
    "hour_angle_deg",
    "cos_zenith",
    "cos_incidence_tilted",
    "air_mass",
    "clear_sky_ghi",
    "clear_sky_poa",
    "mid_month_day_of_year",
]

#: Solar constant [W/m^2].
SOLAR_CONSTANT = 1361.0

#: Day-of-year of the 15th of each month (non-leap year).
_MID_MONTH_DOY = {
    1: 15, 2: 46, 3: 74, 4: 105, 5: 135, 6: 166,
    7: 196, 8: 227, 9: 258, 10: 288, 11: 319, 12: 349,
}


def mid_month_day_of_year(month: int) -> int:
    """Day of year of the middle of ``month`` (the paper evaluates mid-month)."""
    if month not in _MID_MONTH_DOY:
        raise ValueError(f"month must be 1-12, got {month}")
    return _MID_MONTH_DOY[month]


def declination_deg(day_of_year: int) -> float:
    """Solar declination [degrees] by Cooper's formula."""
    return 23.45 * math.sin(math.radians(360.0 / 365.0 * (284 + day_of_year)))


def hour_angle_deg(solar_time_hours: float) -> float:
    """Hour angle [degrees]: 15 degrees per hour from solar noon."""
    return 15.0 * (solar_time_hours - 12.0)


def cos_zenith(latitude_deg: float, day_of_year: int, solar_time_hours: float) -> float:
    """Cosine of the solar zenith angle (negative below the horizon)."""
    phi = math.radians(latitude_deg)
    delta = math.radians(declination_deg(day_of_year))
    omega = math.radians(hour_angle_deg(solar_time_hours))
    return math.sin(phi) * math.sin(delta) + math.cos(phi) * math.cos(delta) * math.cos(omega)


def air_mass(cos_z: float) -> float:
    """Relative optical air mass (Kasten-Young) for a given cos(zenith).

    Returns ``inf`` when the sun is at or below the horizon.
    """
    if cos_z <= 0.0:
        return math.inf
    zenith_deg = math.degrees(math.acos(min(cos_z, 1.0)))
    return 1.0 / (cos_z + 0.50572 * (96.07995 - zenith_deg) ** -1.6364)


def cos_incidence_tilted(
    latitude_deg: float,
    tilt_deg: float,
    day_of_year: int,
    solar_time_hours: float,
) -> float:
    """Cosine of the angle of incidence on a south-facing panel tilted by
    ``tilt_deg`` from horizontal (negative when the sun is behind the panel).

    For an equator-facing panel this equals the zenith cosine evaluated at an
    effective latitude of ``latitude - tilt``.
    """
    return cos_zenith(latitude_deg - tilt_deg, day_of_year, solar_time_hours)


def clear_sky_poa(
    latitude_deg: float,
    day_of_year: int,
    solar_time_hours: float,
    tilt_deg: float | None = None,
) -> float:
    """Clear-sky plane-of-array irradiance [W/m^2] on a tilted panel.

    Combines beam irradiance projected onto the panel (Meinel air-mass
    attenuation) with an isotropic-sky diffuse term.  ``tilt_deg`` defaults
    to the latitude — the standard fixed-tilt installation the paper's
    BP3180N panel would use.
    """
    if tilt_deg is None:
        tilt_deg = latitude_deg
    cz = cos_zenith(latitude_deg, day_of_year, solar_time_hours)
    if cz <= 0.0:
        return 0.0  # sun below horizon
    am = air_mass(cz)
    dni = SOLAR_CONSTANT * (0.7 ** (am ** 0.678))
    cos_aoi = cos_incidence_tilted(latitude_deg, tilt_deg, day_of_year, solar_time_hours)
    beam = dni * max(cos_aoi, 0.0)
    sky_view = (1.0 + math.cos(math.radians(tilt_deg))) / 2.0
    diffuse = 0.07 * SOLAR_CONSTANT * cz * sky_view
    return beam + diffuse


def clear_sky_ghi(latitude_deg: float, day_of_year: int, solar_time_hours: float) -> float:
    """Clear-sky global horizontal irradiance [W/m^2].

    Meinel's empirical attenuation: ``GHI = S * 0.7^(AM^0.678) * cos(z)``,
    with ~5% added back as diffuse irradiance.  Accurate to the level the
    power-management experiments need (the paper's controller only reacts to
    the shape of G(t)).
    """
    cz = cos_zenith(latitude_deg, day_of_year, solar_time_hours)
    if cz <= 0.0:
        return 0.0
    am = air_mass(cz)
    direct = SOLAR_CONSTANT * (0.7 ** (am ** 0.678)) * cz
    diffuse = 0.05 * SOLAR_CONSTANT * cz
    return direct + diffuse
