"""The four NREL MIDC measurement stations evaluated in the paper (Table 2).

Each station carries its geographic coordinates (driving the deterministic
solar-geometry component of irradiance) and a per-season cloud regime
(driving the stochastic component), calibrated so the simulated mean daily
insolation falls in the paper's resource class:

    PFCI  Phoenix, AZ         > 6.0 kWh/m^2/day   Excellent
    BMS   Golden, CO          5.0 - 6.0           Good
    ECSU  Elizabeth City, NC  4.0 - 5.0           Moderate
    ORNL  Oak Ridge, TN       < 4.0               Low
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CloudRegime",
    "Location",
    "EVALUATED_MONTHS",
    "PHOENIX_AZ",
    "GOLDEN_CO",
    "ELIZABETH_CITY_NC",
    "OAK_RIDGE_TN",
    "ALL_LOCATIONS",
    "location_by_code",
]

#: The mid-month days evaluated in the paper (Jan/Apr/Jul/Oct 2009).
EVALUATED_MONTHS = (1, 4, 7, 10)


@dataclass(frozen=True)
class CloudRegime:
    """Stochastic cloud-field parameters for one (station, month).

    Attributes:
        base_clearness: Mean clear-sky fraction away from cloud events
            (1.0 = perfectly clear).
        events_per_hour: Mean Poisson arrival rate of discrete cloud events.
        event_depth: Mean fractional irradiance attenuation of an event
            (0 = transparent, 1 = fully opaque).
        event_minutes: Mean event duration [minutes].
        volatility: Amplitude of fast small-scale clearness jitter; high
            values produce the paper's "irregular" weather patterns.
    """

    base_clearness: float
    events_per_hour: float
    event_depth: float
    event_minutes: float
    volatility: float

    def __post_init__(self) -> None:
        if not 0.0 < self.base_clearness <= 1.0:
            raise ValueError(f"base_clearness must be in (0, 1], got {self.base_clearness}")
        if not 0.0 <= self.event_depth <= 1.0:
            raise ValueError(f"event_depth must be in [0, 1], got {self.event_depth}")


@dataclass(frozen=True)
class Location:
    """A measurement station with geography and seasonal cloud regimes.

    Attributes:
        code: Short MIDC station code (e.g. ``"PFCI"``).
        name: Human-readable place name.
        latitude_deg: Geographic latitude [degrees north].
        potential: Resource class label from the paper's Table 2.
        regimes: Cloud regime per evaluated month {1, 4, 7, 10}.
        temps_c: (daily min, daily max) ambient temperature [C] per month.
    """

    code: str
    name: str
    latitude_deg: float
    potential: str
    regimes: dict[int, CloudRegime]
    temps_c: dict[int, tuple[float, float]]

    def __post_init__(self) -> None:
        for month in EVALUATED_MONTHS:
            if month not in self.regimes:
                raise ValueError(f"{self.code}: missing cloud regime for month {month}")
            if month not in self.temps_c:
                raise ValueError(f"{self.code}: missing temperatures for month {month}")

    def regime_for(self, month: int) -> CloudRegime:
        """The cloud regime of any calendar month.

        Anchor months (the paper's Table 2 calibration) return their
        calibrated regime verbatim; other months interpolate each regime
        parameter between the cyclically adjacent anchors, so ``month=6``
        at Phoenix blends the April and (monsoon) July regimes.
        """
        if month in self.regimes:
            return self.regimes[month]
        lo, hi, t = _bracketing_anchors(month, sorted(self.regimes))
        a, b = self.regimes[lo], self.regimes[hi]
        return CloudRegime(
            base_clearness=_lerp(a.base_clearness, b.base_clearness, t),
            events_per_hour=_lerp(a.events_per_hour, b.events_per_hour, t),
            event_depth=_lerp(a.event_depth, b.event_depth, t),
            event_minutes=_lerp(a.event_minutes, b.event_minutes, t),
            volatility=_lerp(a.volatility, b.volatility, t),
        )

    def temps_for(self, month: int) -> tuple[float, float]:
        """(daily min, daily max) ambient temperature [C] for any month."""
        if month in self.temps_c:
            return self.temps_c[month]
        lo, hi, t = _bracketing_anchors(month, sorted(self.temps_c))
        (lo_min, lo_max), (hi_min, hi_max) = self.temps_c[lo], self.temps_c[hi]
        return (_lerp(lo_min, hi_min, t), _lerp(lo_max, hi_max, t))


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def _bracketing_anchors(month: int, anchors: list[int]) -> tuple[int, int, float]:
    """The anchor months cyclically surrounding ``month`` and the blend
    fraction between them (0 = at the earlier anchor)."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be 1-12, got {month}")
    lo = max((a for a in anchors if a < month), default=anchors[-1])
    hi = min((a for a in anchors if a > month), default=anchors[0])
    # Distances measured forward around the 12-month cycle.
    gap = (hi - lo) % 12 or 12
    offset = (month - lo) % 12
    return lo, hi, offset / gap


PHOENIX_AZ = Location(
    code="PFCI",
    name="Phoenix, AZ",
    latitude_deg=33.45,
    potential="Excellent",
    regimes={
        1: CloudRegime(0.99, 0.10, 0.35, 15.0, 0.01),  # regular winter sky
        4: CloudRegime(0.98, 0.15, 0.35, 15.0, 0.02),
        7: CloudRegime(0.93, 0.80, 0.55, 18.0, 0.08),  # monsoon: irregular
        10: CloudRegime(0.98, 0.20, 0.35, 15.0, 0.02),
    },
    temps_c={1: (8.0, 20.0), 4: (15.0, 30.0), 7: (29.0, 41.0), 10: (18.0, 31.0)},
)

GOLDEN_CO = Location(
    code="BMS",
    name="Golden, CO",
    latitude_deg=39.74,
    potential="Good",
    regimes={
        1: CloudRegime(0.93, 0.50, 0.50, 20.0, 0.04),
        4: CloudRegime(0.92, 0.70, 0.50, 20.0, 0.05),
        7: CloudRegime(0.94, 0.60, 0.45, 15.0, 0.05),
        10: CloudRegime(0.93, 0.55, 0.50, 18.0, 0.04),
    },
    temps_c={1: (-8.0, 6.0), 4: (1.0, 16.0), 7: (14.0, 31.0), 10: (2.0, 18.0)},
)

ELIZABETH_CITY_NC = Location(
    code="ECSU",
    name="Elizabeth City, NC",
    latitude_deg=36.28,
    potential="Moderate",
    regimes={
        1: CloudRegime(0.90, 0.70, 0.55, 22.0, 0.05),
        4: CloudRegime(0.85, 1.20, 0.65, 26.0, 0.10),  # volatile spring
        7: CloudRegime(0.93, 0.50, 0.45, 18.0, 0.05),
        10: CloudRegime(0.88, 0.80, 0.60, 24.0, 0.06),
    },
    temps_c={1: (1.0, 11.0), 4: (9.0, 21.0), 7: (22.0, 32.0), 10: (11.0, 22.0)},
)

OAK_RIDGE_TN = Location(
    code="ORNL",
    name="Oak Ridge, TN",
    latitude_deg=35.93,
    potential="Low",
    regimes={
        1: CloudRegime(0.80, 1.30, 0.65, 30.0, 0.08),
        4: CloudRegime(0.82, 1.40, 0.68, 28.0, 0.10),
        7: CloudRegime(0.86, 1.10, 0.58, 24.0, 0.08),
        10: CloudRegime(0.78, 1.50, 0.68, 30.0, 0.09),
    },
    temps_c={1: (-1.0, 9.0), 4: (8.0, 22.0), 7: (20.0, 32.0), 10: (8.0, 21.0)},
)

ALL_LOCATIONS = (PHOENIX_AZ, GOLDEN_CO, ELIZABETH_CITY_NC, OAK_RIDGE_TN)

_BY_CODE = {loc.code: loc for loc in ALL_LOCATIONS}
_BY_STATE = {"AZ": PHOENIX_AZ, "CO": GOLDEN_CO, "NC": ELIZABETH_CITY_NC, "TN": OAK_RIDGE_TN}


def location_by_code(code: str) -> Location:
    """Look up a station by MIDC code (``PFCI``/``BMS``/``ECSU``/``ORNL``)
    or by the two-letter state tag the paper's figures use (``AZ``...``TN``)."""
    key = code.upper()
    if key in _BY_CODE:
        return _BY_CODE[key]
    if key in _BY_STATE:
        return _BY_STATE[key]
    known = sorted(_BY_CODE) + sorted(_BY_STATE)
    raise KeyError(f"unknown station {code!r}; known: {', '.join(known)}")
