"""Loader for real NREL MIDC data exports.

The paper drives its evaluation from Measurement and Instrumentation Data
Center records (https://www.nrel.gov/midc/).  This repository ships a
synthetic substitute (:mod:`repro.environment.irradiance`), but a user with
downloaded MIDC CSV exports can feed the *measured* days straight into
every simulation via :func:`load_midc_csv`.

Expected format: the MIDC "time series" CSV export —

    DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]
    1/15/2009,7:30,102.4,3.2
    ...

Column names are matched loosely (any column containing "global" or "ghi"
for irradiance; "temp" for temperature; a time column named like "MST",
"LST", or containing "time").
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path

import numpy as np

from repro.environment.trace import EnvironmentTrace

__all__ = ["load_midc_csv", "MIDCFormatError"]


class MIDCFormatError(ValueError):
    """Raised when a CSV cannot be interpreted as a MIDC export."""


def _find_column(headers: list[str], patterns: list[str]) -> int | None:
    for i, header in enumerate(headers):
        lowered = header.lower()
        if any(pattern in lowered for pattern in patterns):
            return i
    return None


def _parse_minutes(token: str) -> float:
    """Parse an HH:MM token into minutes since midnight."""
    match = re.fullmatch(r"(\d{1,2}):(\d{2})", token.strip())
    if not match:
        raise MIDCFormatError(f"unparseable time token {token!r}")
    hours, minutes = int(match.group(1)), int(match.group(2))
    if hours > 23 or minutes > 59:
        raise MIDCFormatError(f"out-of-range time {token!r}")
    return hours * 60.0 + minutes


def load_midc_csv(
    source: str | Path | io.TextIOBase,
    label: str = "MIDC",
    clip_window: tuple[float, float] | None = (450.0, 1050.0),
) -> EnvironmentTrace:
    """Load one day of MIDC measurements into an :class:`EnvironmentTrace`.

    Args:
        source: Path to a CSV file, or an open text stream.
        label: Provenance label for the trace.
        clip_window: Optional (start, end) minutes-since-midnight window;
            defaults to the paper's 7:30 am - 5:30 pm evaluation window.
            Pass None to keep every row.

    Returns:
        The measured day as an :class:`EnvironmentTrace`.

    Raises:
        MIDCFormatError: If required columns are missing or values are
            malformed.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return load_midc_csv(handle, label=label, clip_window=clip_window)

    reader = csv.reader(source)
    try:
        headers = next(reader)
    except StopIteration:
        raise MIDCFormatError("empty CSV") from None

    time_col = _find_column(headers, ["mst", "lst", "pst", "est", "time"])
    ghi_col = _find_column(headers, ["global", "ghi"])
    temp_col = _find_column(headers, ["temp"])
    if time_col is None or ghi_col is None or temp_col is None:
        raise MIDCFormatError(
            f"could not locate time/irradiance/temperature columns in {headers}"
        )

    minutes_list: list[float] = []
    ghi_list: list[float] = []
    temp_list: list[float] = []
    for row_number, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        try:
            minute = _parse_minutes(row[time_col])
            ghi = float(row[ghi_col])
            temp = float(row[temp_col])
        except (IndexError, ValueError, MIDCFormatError) as exc:
            raise MIDCFormatError(f"bad row {row_number}: {row} ({exc})") from None
        # Night-time sensor offsets can read slightly negative.
        minutes_list.append(minute)
        ghi_list.append(max(ghi, 0.0))
        temp_list.append(temp)

    if len(minutes_list) < 2:
        raise MIDCFormatError("fewer than two data rows")

    minutes = np.array(minutes_list)
    ghi = np.array(ghi_list)
    temp = np.array(temp_list)

    if clip_window is not None:
        mask = (minutes >= clip_window[0]) & (minutes <= clip_window[1])
        if int(np.sum(mask)) < 2:
            raise MIDCFormatError(
                f"fewer than two rows inside the window {clip_window}"
            )
        minutes, ghi, temp = minutes[mask], ghi[mask], temp[mask]

    return EnvironmentTrace(
        minutes=minutes, irradiance=ghi, ambient_c=temp, label=label
    )
