"""Meteorological substrate: stations, solar geometry, weather, day traces."""

from repro.environment.irradiance import default_seed, generate_trace
from repro.environment.locations import (
    ALL_LOCATIONS,
    EVALUATED_MONTHS,
    ELIZABETH_CITY_NC,
    GOLDEN_CO,
    OAK_RIDGE_TN,
    PHOENIX_AZ,
    CloudRegime,
    Location,
    location_by_code,
)
from repro.environment.trace import (
    DAYTIME_END_MIN,
    DAYTIME_START_MIN,
    EnvironmentTrace,
)

__all__ = [
    "generate_trace",
    "default_seed",
    "Location",
    "CloudRegime",
    "location_by_code",
    "ALL_LOCATIONS",
    "EVALUATED_MONTHS",
    "PHOENIX_AZ",
    "GOLDEN_CO",
    "ELIZABETH_CITY_NC",
    "OAK_RIDGE_TN",
    "EnvironmentTrace",
    "DAYTIME_START_MIN",
    "DAYTIME_END_MIN",
]
