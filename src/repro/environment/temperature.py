"""Diurnal ambient temperature model.

Ambient temperature follows the classic sinusoidal diurnal cycle: minimum
shortly after sunrise (~6 am), maximum mid-afternoon (~3 pm).  Cloud cover
damps the afternoon peak slightly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["diurnal_temperature"]

#: Hour of daily minimum temperature.
_T_MIN_HOUR = 6.0
#: Hour of daily maximum temperature.
_T_MAX_HOUR = 15.0
#: Fraction of the diurnal amplitude removed under full overcast.
_CLOUD_DAMPING = 0.3


def diurnal_temperature(
    minutes: np.ndarray,
    t_min_c: float,
    t_max_c: float,
    mean_clearness: float = 1.0,
) -> np.ndarray:
    """Ambient temperature [C] at each sample time.

    Args:
        minutes: Sample times [minutes since midnight].
        t_min_c: Daily minimum temperature (at ~6 am).
        t_max_c: Daily maximum temperature (at ~3 pm).
        mean_clearness: Mean clearness of the day in [0, 1]; overcast days
            see a damped afternoon peak.

    Returns:
        Temperature array, same shape as ``minutes``.
    """
    if t_max_c < t_min_c:
        raise ValueError(f"t_max_c ({t_max_c}) must be >= t_min_c ({t_min_c})")
    amplitude = (t_max_c - t_min_c) / 2.0
    amplitude *= 1.0 - _CLOUD_DAMPING * (1.0 - float(np.clip(mean_clearness, 0.0, 1.0)))
    mean = (t_max_c + t_min_c) / 2.0
    hours = minutes / 60.0
    # Sinusoid with minimum at _T_MIN_HOUR and maximum at _T_MAX_HOUR.
    period = 2.0 * (_T_MAX_HOUR - _T_MIN_HOUR)
    phase = np.pi * (hours - _T_MIN_HOUR) / (period / 2.0)
    return mean - amplitude * np.cos(phase)
