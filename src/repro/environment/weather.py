"""Seeded stochastic cloud fields (the weather component of irradiance).

Clear-sky irradiance is deterministic; weather multiplies it by a *clearness
series* in (0, 1].  A clearness series is composed of:

  * a base clearness level (per station/month regime),
  * discrete cloud events — Poisson arrivals with lognormal-ish durations and
    depths, smoothed at their edges so passages ramp rather than step,
  * fast small-amplitude jitter (an AR(1) process) giving the "irregular"
    texture of patterns like Phoenix's July monsoon sky.

Everything is driven by a caller-supplied ``numpy.random.Generator``, so a
given (station, month, seed) always reproduces the same day.
"""

from __future__ import annotations

import numpy as np

from repro.environment.locations import CloudRegime

__all__ = ["clearness_series"]

#: Floor on clearness: even heavy overcast passes some diffuse light.
_MIN_CLEARNESS = 0.05
#: Edge-smoothing time constant of cloud events [minutes].
_EDGE_MINUTES = 3.0
#: AR(1) pole of the fast jitter component.
_JITTER_POLE = 0.85


def _cloud_event_profile(
    minutes: np.ndarray, center: float, duration: float, depth: float
) -> np.ndarray:
    """Attenuation profile of one cloud passage: a smoothed boxcar.

    Returns the per-sample fractional attenuation (0 = no effect,
    ``depth`` = full effect) of an event centered at ``center`` lasting
    ``duration`` minutes, with logistic-smoothed edges.
    """
    half = duration / 2.0
    rising = 1.0 / (1.0 + np.exp(-(minutes - (center - half)) / _EDGE_MINUTES))
    falling = 1.0 / (1.0 + np.exp((minutes - (center + half)) / _EDGE_MINUTES))
    return depth * rising * falling


def clearness_series(
    minutes: np.ndarray,
    regime: CloudRegime,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a clearness multiplier series for the given sample times.

    Args:
        minutes: Sample times [minutes since midnight], uniformly spaced.
        regime: The station/month cloud regime.
        rng: Seeded random generator (sole source of randomness).

    Returns:
        Array of clearness values in ``[0.05, 1.0]``, same shape as
        ``minutes``.
    """
    span_hours = float(minutes[-1] - minutes[0]) / 60.0
    clearness = np.full_like(minutes, regime.base_clearness, dtype=float)

    # Discrete cloud events: Poisson count over the window.
    n_events = rng.poisson(regime.events_per_hour * span_hours)
    for _ in range(n_events):
        center = rng.uniform(minutes[0], minutes[-1])
        duration = rng.gamma(shape=2.0, scale=regime.event_minutes / 2.0)
        depth = float(np.clip(rng.normal(regime.event_depth, 0.15), 0.0, 0.95))
        clearness *= 1.0 - _cloud_event_profile(minutes, center, duration, depth)

    # Fast jitter: AR(1) noise scaled by the regime volatility.
    if regime.volatility > 0.0:
        noise = np.empty_like(clearness)
        state = 0.0
        innovations = rng.normal(0.0, regime.volatility, size=len(clearness))
        for i, eps in enumerate(innovations):
            state = _JITTER_POLE * state + eps
            noise[i] = state
        clearness *= 1.0 + noise

    return np.clip(clearness, _MIN_CLEARNESS, 1.0)
