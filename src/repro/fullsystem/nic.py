"""Network interface with link-rate scaling.

Ethernet PHYs negotiate discrete link rates with strongly rate-dependent
power (a 1 GbE PHY burns several times a 100 Mb/s link).  The NIC is the
smallest knob in the full-system ladder but rounds out the paper's
Section 8 component list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fullsystem.component import TunableComponent

__all__ = ["LinkRate", "NetworkInterface"]


@dataclass(frozen=True)
class LinkRate:
    """One negotiated link rate.

    Attributes:
        mbps: Link speed [Mb/s].
        power_w: NIC power at this rate [W].
    """

    mbps: float
    power_w: float

    def __post_init__(self) -> None:
        if self.mbps <= 0 or self.power_w < 0:
            raise ValueError(f"invalid link rate {self}")


class NetworkInterface(TunableComponent):
    """A rate-scalable NIC.

    Args:
        rates: Ascending link rates.
        demand_mbps: Offered network load [Mb/s].
    """

    name = "nic"

    def __init__(
        self,
        rates: tuple[LinkRate, ...] = (
            LinkRate(10.0, 0.3),
            LinkRate(100.0, 0.7),
            LinkRate(1000.0, 2.2),
        ),
        demand_mbps: float = 400.0,
    ) -> None:
        if len(rates) < 2:
            raise ValueError("a NIC needs at least two link rates")
        speeds = [r.mbps for r in rates]
        if speeds != sorted(speeds):
            raise ValueError("link rates must be ascending")
        if demand_mbps < 0:
            raise ValueError(f"demand_mbps must be >= 0, got {demand_mbps}")
        self.rates = rates
        self.demand_mbps = demand_mbps
        self._level = len(rates) - 1

    @property
    def n_levels(self) -> int:
        return len(self.rates)

    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        self._level = self._check(level)

    def power_at_level(self, level: int) -> float:
        """NIC power [W] at a link rate."""
        return self.rates[self._check(level)].power_w

    def service_at_level(self, level: int) -> float:
        """Served traffic [Mb/s]: offered load capped by the link rate."""
        return min(self.demand_mbps, self.rates[self._check(level)].mbps)
