"""DRAM subsystem with power-state laddering.

Models a DDR-class memory system as a ladder from self-refresh (data
retained, no service) through power-down to full-bandwidth active modes
with increasing numbers of open ranks.  Power splits into a per-level
background component plus an activity component proportional to served
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fullsystem.component import TunableComponent

__all__ = ["MemoryState", "DRAMSystem", "ddr2_4gb"]


@dataclass(frozen=True)
class MemoryState:
    """One memory power state.

    Attributes:
        name: State label.
        background_w: Background power at this state [W].
        peak_bandwidth_gbs: Achievable bandwidth [GB/s] (0 in retention
            states).
    """

    name: str
    background_w: float
    peak_bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.background_w < 0 or self.peak_bandwidth_gbs < 0:
            raise ValueError(f"negative parameter in memory state {self.name}")


def ddr2_4gb() -> list[MemoryState]:
    """A 4 GB DDR2-class ladder contemporary with the paper's 90 nm chip."""
    return [
        MemoryState("self-refresh", 0.8, 0.0),
        MemoryState("power-down", 2.0, 1.0),
        MemoryState("active-1rank", 5.0, 3.2),
        MemoryState("active-2rank", 8.0, 6.4),
        MemoryState("active-4rank", 12.0, 12.8),
    ]


class DRAMSystem(TunableComponent):
    """A DRAM system on the power-state ladder.

    Args:
        states: Ordered states, lowest power first.
        energy_per_gb_j: Activity energy per gigabyte transferred [J/GB].
        demand_gbs: Bandwidth the workload asks for [GB/s]; service is the
            min of demand and the state's peak.
    """

    name = "memory"

    def __init__(
        self,
        states: list[MemoryState] | None = None,
        energy_per_gb_j: float = 0.5,
        demand_gbs: float = 8.0,
    ) -> None:
        self.states = states or ddr2_4gb()
        if len(self.states) < 2:
            raise ValueError("memory needs at least two power states")
        if energy_per_gb_j < 0:
            raise ValueError(f"energy_per_gb_j must be >= 0, got {energy_per_gb_j}")
        if demand_gbs < 0:
            raise ValueError(f"demand_gbs must be >= 0, got {demand_gbs}")
        self.energy_per_gb_j = energy_per_gb_j
        self.demand_gbs = demand_gbs
        self._level = len(self.states) - 1

    @property
    def n_levels(self) -> int:
        return len(self.states)

    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        self._level = self._check(level)

    def service_at_level(self, level: int) -> float:
        """Served bandwidth [GB/s]: demand capped by the state's peak."""
        state = self.states[self._check(level)]
        return min(self.demand_gbs, state.peak_bandwidth_gbs)

    def power_at_level(self, level: int) -> float:
        """Background plus activity power [W] at a level."""
        state = self.states[self._check(level)]
        return state.background_w + self.energy_per_gb_j * self.service_at_level(level)
