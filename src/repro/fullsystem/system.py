"""Whole-server load coordination (the paper's Section 8 future work).

``FullSystemLoad`` bundles the multi-core chip with the tunable platform
components (memory, disk, NIC) behind the same electrical and tuning
interface the controller already speaks, so SolarCore's MPP tracking drives
the *entire server* rather than the processor alone.

Cross-component allocation generalizes the throughput-power ratio: each
candidate move (a core's DVFS step, a memory state, a disk speed, a link
rate) is scored by marginal *system utility* per watt, where a component's
utility is its normalized service level scaled by an importance weight.
The chip's utility is its normalized throughput.
"""

from __future__ import annotations

from repro.core.load_tuning import LoadTuner
from repro.core.tpr import downgrade_tpr, upgrade_tpr
from repro.fullsystem.component import TunableComponent
from repro.multicore.chip import NOMINAL_RAIL_V, MultiCoreChip

__all__ = ["FullSystemLoad", "SystemTuner", "DEFAULT_WEIGHTS"]

#: Relative importance of each subsystem's service in system utility.
DEFAULT_WEIGHTS = {"chip": 1.0, "memory": 0.35, "disk": 0.2, "nic": 0.1}


class FullSystemLoad:
    """A server: chip + platform components as one electrical load.

    Args:
        chip: The multi-core processor.
        components: Tunable platform components.
        weights: Importance weight per subsystem name (``"chip"`` plus each
            component's ``name``); missing names default to 0.
    """

    def __init__(
        self,
        chip: MultiCoreChip,
        components: list[TunableComponent],
        weights: dict[str, float] | None = None,
    ) -> None:
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        self.chip = chip
        self.components = list(components)
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)

    # ------------------------------------------------------------------
    # Electrical view (chip-compatible interface for the controller)
    # ------------------------------------------------------------------
    def total_power_at(self, minute: float) -> float:
        """Server power [W]: chip plus every platform component."""
        return self.chip.total_power_at(minute) + sum(
            c.power for c in self.components
        )

    def floor_power_at(self, minute: float, with_gating: bool = True) -> float:
        """Minimum sustainable server power [W]: chip floor plus every
        component at its bottom level."""
        return self.chip.floor_power_at(minute, with_gating) + sum(
            c.power_at_level(0) for c in self.components
        )

    def effective_resistance(
        self, minute: float, rail_v: float = NOMINAL_RAIL_V
    ) -> float:
        """DC resistance [ohm] the server presents at the converter output."""
        power = self.total_power_at(minute)
        if power <= 0.0:
            return float("inf")
        return rail_v * rail_v / power

    # ------------------------------------------------------------------
    # System utility
    # ------------------------------------------------------------------
    def _chip_weight(self, minute: float) -> float:
        """Chip utility per GIPS: weight normalized by peak throughput."""
        peak = sum(
            core.throughput_at_level(core.table.max_level, minute)
            for core in self.chip.cores
        )
        if peak <= 0.0:
            return 0.0
        return self.weights.get("chip", 0.0) / peak

    def utility_at(self, minute: float) -> float:
        """Weighted normalized service across the whole server in [0, ~1]."""
        utility = self._chip_weight(minute) * self.chip.total_throughput_at(minute)
        for component in self.components:
            top = component.service_at_level(component.n_levels - 1)
            if top > 0.0:
                utility += (
                    self.weights.get(component.name, 0.0) * component.service / top
                )
        return utility

    # ------------------------------------------------------------------
    # Cross-component candidate scoring
    # ------------------------------------------------------------------
    def best_upgrade(self, minute: float):
        """(mover, utility-per-watt) of the best single upgrade, or None."""
        best = None
        best_score = float("-inf")
        chip_scale = self._chip_weight(minute)
        for core in self.chip.cores:
            tpr = upgrade_tpr(core, minute)
            if tpr is not None and tpr * chip_scale > best_score:
                best, best_score = core, tpr * chip_scale
        for component in self.components:
            ratio = component.upgrade_ratio()
            top = component.service_at_level(component.n_levels - 1)
            if ratio is None or top <= 0.0:
                continue
            score = self.weights.get(component.name, 0.0) * ratio / top
            if score > best_score:
                best, best_score = component, score
        return best

    def best_downgrade(self, minute: float):
        """(mover) shedding the least utility per watt, or None."""
        best = None
        best_score = float("inf")
        chip_scale = self._chip_weight(minute)
        for core in self.chip.cores:
            tpr = downgrade_tpr(core, minute)
            if tpr is not None and tpr * chip_scale < best_score:
                best, best_score = core, tpr * chip_scale
        for component in self.components:
            ratio = component.downgrade_ratio()
            top = component.service_at_level(component.n_levels - 1)
            if ratio is None or top <= 0.0:
                continue
            score = self.weights.get(component.name, 0.0) * ratio / top
            if score < best_score:
                best, best_score = component, score
        return best


class SystemTuner(LoadTuner):
    """Load tuner driving a :class:`FullSystemLoad` by marginal utility.

    Passed to :class:`~repro.core.controller.SolarCoreController` in place
    of a per-chip tuner; the ``chip`` argument of ``increase``/``decrease``
    is the :class:`FullSystemLoad`.
    """

    name = "System&Opt"

    def increase(self, system: FullSystemLoad, minute: float) -> bool:
        mover = system.best_upgrade(minute)
        if mover is None:
            return False
        # Cores and components share the set_level/level contract.
        mover.set_level(mover.level + 1)
        return True

    def decrease(self, system: FullSystemLoad, minute: float) -> bool:
        mover = system.best_downgrade(minute)
        if mover is None:
            return False
        mover.set_level(mover.level - 1)
        return True
