"""DRPM-style disk with dynamic rotation-speed control (paper ref [17]).

Gurumurthi et al.'s DRPM lets server disks serve requests at multiple
rotational speeds.  Spindle power grows roughly with the cube of RPM
(windage dominates); sustained transfer rate grows linearly with RPM.
This is precisely the storage knob the paper suggests coupling to the MPP
tracker (Section 4.3's closing remark).
"""

from __future__ import annotations

import numpy as np

from repro.fullsystem.component import TunableComponent

__all__ = ["DRPMDisk"]


class DRPMDisk(TunableComponent):
    """A multi-speed (DRPM) disk drive.

    Args:
        rpm_levels: Ascending rotational speeds [RPM].
        power_at_max_w: Spindle+electronics power at the top speed [W].
        idle_electronics_w: Speed-independent electronics power [W].
        transfer_at_max_mbs: Sustained transfer rate at top speed [MB/s].
        demand_mbs: Workload's requested IO rate [MB/s].
    """

    name = "disk"

    def __init__(
        self,
        rpm_levels: tuple[int, ...] = (3600, 5400, 7200, 10000, 12000, 15000),
        power_at_max_w: float = 13.0,
        idle_electronics_w: float = 2.5,
        transfer_at_max_mbs: float = 120.0,
        demand_mbs: float = 80.0,
    ) -> None:
        if len(rpm_levels) < 2:
            raise ValueError("a DRPM disk needs at least two speeds")
        if list(rpm_levels) != sorted(rpm_levels):
            raise ValueError("rpm_levels must be ascending")
        if power_at_max_w <= idle_electronics_w:
            raise ValueError("top-speed power must exceed idle electronics power")
        self.rpm_levels = rpm_levels
        self.power_at_max_w = power_at_max_w
        self.idle_electronics_w = idle_electronics_w
        self.transfer_at_max_mbs = transfer_at_max_mbs
        self.demand_mbs = demand_mbs
        self._level = len(rpm_levels) - 1

    @property
    def n_levels(self) -> int:
        return len(self.rpm_levels)

    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        self._level = self._check(level)

    def rpm_at_level(self, level: int) -> int:
        """Rotational speed [RPM] at a level."""
        return self.rpm_levels[self._check(level)]

    def power_at_level(self, level: int) -> float:
        """Electronics plus cubic-in-RPM spindle power [W]."""
        rpm_ratio = self.rpm_at_level(level) / self.rpm_levels[-1]
        spindle_max = self.power_at_max_w - self.idle_electronics_w
        return self.idle_electronics_w + spindle_max * float(np.power(rpm_ratio, 3))

    def service_at_level(self, level: int) -> float:
        """Served IO rate [MB/s]: demand capped by the speed's capability."""
        rpm_ratio = self.rpm_at_level(level) / self.rpm_levels[-1]
        return min(self.demand_mbs, self.transfer_at_max_mbs * rpm_ratio)
