"""Full-system extension: memory/disk/NIC load adaptation (paper Section 8)."""

from repro.fullsystem.component import TunableComponent
from repro.fullsystem.disk import DRPMDisk
from repro.fullsystem.memory import DRAMSystem, MemoryState, ddr2_4gb
from repro.fullsystem.nic import LinkRate, NetworkInterface
from repro.fullsystem.simulation import (
    FullSystemDayResult,
    FullSystemPolicy,
    default_server,
    fullsystem_day_engine,
    run_day_fullsystem,
)
from repro.fullsystem.system import DEFAULT_WEIGHTS, FullSystemLoad, SystemTuner

__all__ = [
    "TunableComponent",
    "DRAMSystem",
    "MemoryState",
    "ddr2_4gb",
    "DRPMDisk",
    "NetworkInterface",
    "LinkRate",
    "FullSystemLoad",
    "SystemTuner",
    "DEFAULT_WEIGHTS",
    "FullSystemDayResult",
    "FullSystemPolicy",
    "run_day_fullsystem",
    "fullsystem_day_engine",
    "default_server",
]
