"""Day-long full-system solar simulation (the Section 8 scenario).

Like :func:`repro.core.simulation.run_day`, but the PV array powers the
*whole server* — chip, memory, disk, and NIC — and the controller's load
knob is the cross-component :class:`~repro.fullsystem.system.SystemTuner`.
The array defaults to two parallel BP3180N modules: a server draws roughly
twice what its processor alone does.

The scenario is a :class:`~repro.core.engine.SupplyPolicy` plugin
(:class:`FullSystemPolicy`) for the unified
:class:`~repro.core.engine.DayEngine`; :func:`run_day_fullsystem` is the
stable public shim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.engine import (
    DayEngine,
    SeriesRecorder,
    StepContext,
    StepSample,
    SupplyPolicy,
)
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.fullsystem.disk import DRPMDisk
from repro.fullsystem.memory import DRAMSystem
from repro.fullsystem.nic import NetworkInterface
from repro.fullsystem.system import FullSystemLoad, SystemTuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.pv.array import PVArray
from repro.telemetry import hub as telemetry_hub
from repro.workloads.mixes import WorkloadMix, resolve_mix

__all__ = [
    "FullSystemDayResult",
    "FullSystemPolicy",
    "run_day_fullsystem",
    "fullsystem_day_engine",
    "default_server",
]


def default_server(
    workload: WorkloadMix, chip_spec: str | None = None
) -> FullSystemLoad:
    """A server built from the spec'd chip, memory, disk, and NIC."""
    return FullSystemLoad(
        chip=MultiCoreChip(workload, spec=chip_spec),
        components=[DRAMSystem(), DRPMDisk(), NetworkInterface()],
    )


@dataclass(frozen=True)
class FullSystemDayResult:
    """Measurements of one full-system solar day.

    Attributes:
        mix_name: Workload mix on the chip.
        location_code: Station code.
        month: Calendar month.
        minutes: Sample times.
        mpp_w: Panel MPP power per step [W].
        consumed_w: Server power drawn from the panel per step [W].
        utility_w: Server power drawn from the grid per step [W].
        chip_throughput_gips: Chip throughput per step.
        system_utility: Weighted normalized system service per step.
        on_solar: Whether the server ran from the panel per step.
    """

    mix_name: str
    location_code: str
    month: int
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    utility_w: np.ndarray
    chip_throughput_gips: np.ndarray
    system_utility: np.ndarray
    on_solar: np.ndarray

    @property
    def step_minutes(self) -> float:
        """Simulation step [minutes]."""
        return float(self.minutes[1] - self.minutes[0])

    @property
    def energy_utilization(self) -> float:
        """Solar energy consumed / theoretical maximum supply."""
        available = float(np.sum(self.mpp_w))
        if available <= 0.0:
            return 0.0
        return float(np.sum(self.consumed_w[self.on_solar])) / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime the server ran from the panel."""
        return float(np.mean(self.on_solar))

    @property
    def mean_system_utility(self) -> float:
        """Average weighted service level over the day."""
        return float(np.mean(self.system_utility))


class FullSystemPolicy(SupplyPolicy):
    """Whole-server supply policy: MPPT with the cross-component tuner.

    The load is a :class:`FullSystemLoad` (chip + memory + disk + NIC) and
    tracking adjusts every component through the
    :class:`~repro.fullsystem.system.SystemTuner`.
    """

    uses_ats = True
    name = "FullSystem"

    def __init__(
        self,
        system: FullSystemLoad,
        cfg: SolarCoreConfig,
        array: PVArray,
    ) -> None:
        self.system = system
        self.cfg = cfg
        system.chip.set_all_min()
        for component in system.components:
            component.set_level(0)
        self.controller = SolarCoreController(
            array, DCDCConverter(), system, SystemTuner(), cfg
        )
        self._last_track = -float("inf")

    def floor_power(self, ctx: StepContext) -> float:
        return self.system.floor_power_at(ctx.minute, self.cfg.enable_pcpg)

    def enter_solar(self, ctx: StepContext) -> None:
        system = self.system
        system.chip.ungate_all()
        system.chip.set_all_min()
        for component in system.components:
            component.set_level(0)
        self._last_track = -float("inf")

    def solar_step(self, ctx: StepContext) -> StepSample:
        system = self.system
        if ctx.minute - self._last_track >= self.cfg.tracking_interval_min:
            self.controller.track(ctx.irradiance, ctx.cell_temp, ctx.minute)
            self._last_track = ctx.minute
        drawn = min(system.total_power_at(ctx.minute), ctx.mpp.power)
        retired = system.chip.advance(ctx.minute, ctx.dt)
        return StepSample(
            consumed_w=drawn,
            throughput_gips=system.chip.total_throughput_at(ctx.minute),
            retired_ginst=retired,
            system_utility=system.utility_at(ctx.minute),
        )

    def utility_step(self, ctx: StepContext) -> StepSample:
        system = self.system
        system.chip.ungate_all()
        system.chip.set_all_max()
        for component in system.components:
            component.set_level(component.n_levels - 1)
        grid = system.total_power_at(ctx.minute)
        system.chip.advance(ctx.minute, ctx.dt)
        return StepSample(
            consumed_w=0.0,
            throughput_gips=system.chip.total_throughput_at(ctx.minute),
            utility_w=grid,
            system_utility=system.utility_at(ctx.minute),
        )


class FullSystemRecorder(SeriesRecorder):
    """Adds the grid-power and service-level series to the base recorder."""

    def __init__(self, workload: WorkloadMix, location: Location, month: int) -> None:
        super().__init__()
        self.workload = workload
        self.location = location
        self.month = month
        self.utility_w: list[float] = []
        self.system_utility: list[float] = []

    def record(self, ctx: StepContext, solar: bool, sample: StepSample) -> None:
        super().record(ctx, solar, sample)
        self.utility_w.append(sample.utility_w)
        self.system_utility.append(sample.system_utility)

    def build(self, engine: DayEngine) -> FullSystemDayResult:
        return FullSystemDayResult(
            mix_name=self.workload.name,
            location_code=self.location.code,
            month=self.month,
            minutes=np.array(self.minutes),
            mpp_w=np.array(self.mpp_w),
            consumed_w=np.array(self.consumed_w),
            utility_w=np.array(self.utility_w),
            chip_throughput_gips=np.array(self.throughput),
            system_utility=np.array(self.system_utility),
            on_solar=np.array(self.on_solar, dtype=bool),
        )


def fullsystem_day_engine(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    server: FullSystemLoad | None = None,
    faults=None,
) -> DayEngine:
    """The configured :class:`DayEngine` behind :func:`run_day_fullsystem`."""
    from repro.faults import build_fault_kit

    cfg = config or SolarCoreConfig()
    workload = resolve_mix(workload)
    array = array or PVArray(modules_parallel=2)
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)
    kit = build_fault_kit(faults)
    if kit is not None:
        array = kit.wrap_array(array)
    system = server or default_server(workload, chip_spec=cfg.chip_spec)
    supply = FullSystemPolicy(system, cfg, array)
    return DayEngine(
        array=array,
        trace=trace,
        config=cfg,
        policy=supply,
        recorder=FullSystemRecorder(workload, location, month),
        telemetry=telemetry_hub.current(),
        span_name="run_day_fullsystem",
        span_attrs=dict(mix=workload.name, location=location.code, month=month),
        faults=kit.scheduler if kit is not None else None,
    )


def run_day_fullsystem(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    server: FullSystemLoad | None = None,
    faults=None,
) -> FullSystemDayResult:
    """Simulate one day of a fully solar-powered server.

    Args:
        workload: Chip workload mix (name or object).
        location: Station to simulate.
        month: Calendar month.
        config: Controller/simulation parameters.
        array: PV array; defaults to 2 parallel BP3180N modules (server
            scale).
        trace: Pre-generated environment trace.
        seed: Environment seed when ``trace`` is not given.
        server: Pre-built server (defaults to chip + DRAM + DRPM disk + NIC).

    Returns:
        A :class:`FullSystemDayResult`.
    """
    engine = fullsystem_day_engine(
        workload, location, month, config, array, trace, seed, server, faults
    )
    return engine.run()
