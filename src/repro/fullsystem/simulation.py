"""Day-long full-system solar simulation (the Section 8 scenario).

Like :func:`repro.core.simulation.run_day`, but the PV array powers the
*whole server* — chip, memory, disk, and NIC — and the controller's load
knob is the cross-component :class:`~repro.fullsystem.system.SystemTuner`.
The array defaults to two parallel BP3180N modules: a server draws roughly
twice what its processor alone does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.fullsystem.disk import DRPMDisk
from repro.fullsystem.memory import DRAMSystem
from repro.fullsystem.nic import NetworkInterface
from repro.fullsystem.system import FullSystemLoad, SystemTuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import WorkloadMix, mix as mix_by_name

__all__ = ["FullSystemDayResult", "run_day_fullsystem", "default_server"]


def default_server(workload: WorkloadMix) -> FullSystemLoad:
    """A server built from the default chip, memory, disk, and NIC."""
    return FullSystemLoad(
        chip=MultiCoreChip(workload),
        components=[DRAMSystem(), DRPMDisk(), NetworkInterface()],
    )


@dataclass(frozen=True)
class FullSystemDayResult:
    """Measurements of one full-system solar day.

    Attributes:
        mix_name: Workload mix on the chip.
        location_code: Station code.
        month: Calendar month.
        minutes: Sample times.
        mpp_w: Panel MPP power per step [W].
        consumed_w: Server power drawn from the panel per step [W].
        utility_w: Server power drawn from the grid per step [W].
        chip_throughput_gips: Chip throughput per step.
        system_utility: Weighted normalized system service per step.
        on_solar: Whether the server ran from the panel per step.
    """

    mix_name: str
    location_code: str
    month: int
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    utility_w: np.ndarray
    chip_throughput_gips: np.ndarray
    system_utility: np.ndarray
    on_solar: np.ndarray

    @property
    def step_minutes(self) -> float:
        """Simulation step [minutes]."""
        return float(self.minutes[1] - self.minutes[0])

    @property
    def energy_utilization(self) -> float:
        """Solar energy consumed / theoretical maximum supply."""
        available = float(np.sum(self.mpp_w))
        if available <= 0.0:
            return 0.0
        return float(np.sum(self.consumed_w[self.on_solar])) / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime the server ran from the panel."""
        return float(np.mean(self.on_solar))

    @property
    def mean_system_utility(self) -> float:
        """Average weighted service level over the day."""
        return float(np.mean(self.system_utility))


def run_day_fullsystem(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    server: FullSystemLoad | None = None,
) -> FullSystemDayResult:
    """Simulate one day of a fully solar-powered server.

    Args:
        workload: Chip workload mix (name or object).
        location: Station to simulate.
        month: Calendar month.
        config: Controller/simulation parameters.
        array: PV array; defaults to 2 parallel BP3180N modules (server
            scale).
        trace: Pre-generated environment trace.
        seed: Environment seed when ``trace`` is not given.
        server: Pre-built server (defaults to chip + DRAM + DRPM disk + NIC).

    Returns:
        A :class:`FullSystemDayResult`.
    """
    cfg = config or SolarCoreConfig()
    workload = _resolve(workload)
    array = array or PVArray(modules_parallel=2)
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    system = server or default_server(workload)
    system.chip.set_all_levels(system.chip.table.min_level)
    for component in system.components:
        component.set_level(0)

    converter = DCDCConverter()
    controller = SolarCoreController(array, converter, system, SystemTuner(), cfg)
    ats = AutomaticTransferSwitch(cfg.ats_margin)

    minutes, mpps, consumed, utility, throughput, utilities, on_solar = (
        [], [], [], [], [], [], []
    )
    last_track = -float("inf")
    prev_source = PowerSource.UTILITY
    dt = cfg.step_minutes

    for i in range(len(trace.minutes) - 1):
        minute = float(trace.minutes[i])
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        mpp = find_mpp(array, irradiance, cell_temp)

        source = ats.update(mpp.power, system.floor_power_at(minute, cfg.enable_pcpg))
        if source is PowerSource.SOLAR:
            if prev_source is not PowerSource.SOLAR:
                system.chip.ungate_all()
                system.chip.set_all_levels(system.chip.table.min_level)
                for component in system.components:
                    component.set_level(0)
                last_track = -float("inf")
            if minute - last_track >= cfg.tracking_interval_min:
                controller.track(irradiance, cell_temp, minute)
                last_track = minute
            drawn = min(system.total_power_at(minute), mpp.power)
            grid = 0.0
        else:
            system.chip.ungate_all()
            system.chip.set_all_levels(system.chip.table.max_level)
            for component in system.components:
                component.set_level(component.n_levels - 1)
            drawn = 0.0
            grid = system.total_power_at(minute)

        system.chip.advance(minute, dt)
        minutes.append(minute)
        mpps.append(mpp.power)
        consumed.append(drawn)
        utility.append(grid)
        throughput.append(system.chip.total_throughput_at(minute))
        utilities.append(system.utility_at(minute))
        on_solar.append(source is PowerSource.SOLAR)
        prev_source = source

    return FullSystemDayResult(
        mix_name=workload.name,
        location_code=location.code,
        month=month,
        minutes=np.array(minutes),
        mpp_w=np.array(mpps),
        consumed_w=np.array(consumed),
        utility_w=np.array(utility),
        chip_throughput_gips=np.array(throughput),
        system_utility=np.array(utilities),
        on_solar=np.array(on_solar, dtype=bool),
    )


def _resolve(workload: WorkloadMix | str) -> WorkloadMix:
    if isinstance(workload, str):
        return mix_by_name(workload)
    return workload
