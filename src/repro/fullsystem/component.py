"""Common interface for tunable full-system components (paper Section 8).

The paper's future work extends load adaptation beyond the processor to
"other hardware components such as memory, disk and network interface".
Each component exposes the same contract the cores do: an ordered ladder of
operating *levels*, each with a power draw and a service-rate (throughput
proxy), so the throughput-power-ratio machinery generalizes directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["TunableComponent"]


class TunableComponent(ABC):
    """A device with an ordered power/performance level ladder.

    Level 0 is the lowest-power state; higher levels serve faster.  The
    *service* unit is component-specific (GB/s for memory, MB/s for disk,
    Mb/s for the NIC); the system tuner normalizes by each component's
    weight when trading them off.
    """

    name: str = "component"

    @property
    @abstractmethod
    def n_levels(self) -> int:
        """Number of operating levels."""

    @property
    @abstractmethod
    def level(self) -> int:
        """Current operating level."""

    @abstractmethod
    def set_level(self, level: int) -> None:
        """Move to an operating level (raises IndexError out of range)."""

    @abstractmethod
    def power_at_level(self, level: int) -> float:
        """Power draw [W] at a level."""

    @abstractmethod
    def service_at_level(self, level: int) -> float:
        """Service rate (component-specific units) at a level."""

    # ------------------------------------------------------------------
    # Derived helpers shared by all components
    # ------------------------------------------------------------------
    def _check(self, level: int) -> int:
        if not 0 <= level < self.n_levels:
            raise IndexError(
                f"{self.name}: level {level} out of range [0, {self.n_levels - 1}]"
            )
        return level

    @property
    def power(self) -> float:
        """Power draw [W] at the current level."""
        return self.power_at_level(self.level)

    @property
    def service(self) -> float:
        """Service rate at the current level."""
        return self.service_at_level(self.level)

    def upgrade_ratio(self) -> float | None:
        """Service gained per watt for one level up (None at the top)."""
        if self.level >= self.n_levels - 1:
            return None
        d_service = self.service_at_level(self.level + 1) - self.service
        d_power = self.power_at_level(self.level + 1) - self.power
        if d_power <= 0.0:
            return None
        return d_service / d_power

    def downgrade_ratio(self) -> float | None:
        """Service lost per watt for one level down (None at the bottom)."""
        if self.level <= 0:
            return None
        d_service = self.service - self.service_at_level(self.level - 1)
        d_power = self.power - self.power_at_level(self.level - 1)
        if d_power <= 0.0:
            return None
        return d_service / d_power
