"""Day-long rack simulation: N chips on one solar farm.

The rack coordinator tracks the farm's MPP (assumed ideal at this level —
each chip's local behaviour was validated in :mod:`repro.core`), divides
the budget by the configured policy, and each chip's local (per-node)
allocator spends its share via TPR-greedy level assignment.

The scenario is a :class:`~repro.core.engine.SupplyPolicy` plugin
(:class:`RackPolicy`) for the unified
:class:`~repro.core.engine.DayEngine`; :func:`run_day_rack` is the stable
public shim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.engine import (
    DayEngine,
    SeriesRecorder,
    StepContext,
    StepSample,
    SupplyPolicy,
)
from repro.core.fixed_power import allocate_budget
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.multicore.chip import MultiCoreChip
from repro.pv.array import PVArray
from repro.rack.coordinator import divide_budget
from repro.telemetry import hub as telemetry_hub
from repro.workloads.mixes import mix as mix_by_name

__all__ = ["RackDayResult", "RackPolicy", "run_day_rack", "rack_day_engine"]


@dataclass(frozen=True)
class RackDayResult:
    """Measurements of one rack day.

    Attributes:
        mix_names: Workload mix per chip.
        location_code: Station code.
        month: Calendar month.
        policy: Budget-division policy.
        minutes: Sample times.
        mpp_w: Farm MPP power per step [W].
        consumed_w: Rack power drawn from the farm per step [W].
        throughput_gips: Rack throughput per step.
        on_solar: Whether the rack ran from the farm per step.
        retired_ginst: Instructions retired while solar-powered, per chip.
    """

    mix_names: tuple[str, ...]
    location_code: str
    month: int
    policy: str
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    throughput_gips: np.ndarray
    on_solar: np.ndarray
    retired_ginst: tuple[float, ...]

    @property
    def total_ptp(self) -> float:
        """Rack-wide solar-powered instructions [Ginst]."""
        return float(sum(self.retired_ginst))

    @property
    def energy_utilization(self) -> float:
        """Consumed / available farm energy."""
        available = float(np.sum(self.mpp_w))
        if available <= 0.0:
            return 0.0
        return float(np.sum(self.consumed_w[self.on_solar])) / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime on solar."""
        return float(np.mean(self.on_solar))


class RackPolicy(SupplyPolicy):
    """Coordinator over N per-node allocators sharing one solar farm.

    At the tracking cadence the coordinator divides the farm budget by the
    configured policy (``equal``/``proportional``/``tpr``); each chip's
    local allocator then spends its share.  Off solar, every node runs at
    full speed from the grid.
    """

    uses_ats = True

    def __init__(
        self,
        mix_names: tuple[str, ...],
        division_policy: str,
        cfg: SolarCoreConfig,
    ) -> None:
        self.cfg = cfg
        self.division_policy = division_policy
        self.name = f"Rack-{division_policy}"
        self.chips = [
            MultiCoreChip(mix_by_name(name), seed=1000 + 17 * i, spec=cfg.chip_spec)
            for i, name in enumerate(mix_names)
        ]
        self.retired = [0.0] * len(self.chips)
        self._last_alloc = -float("inf")

    def floor_power(self, ctx: StepContext) -> float:
        return sum(
            chip.floor_power_at(ctx.minute, with_gating=self.cfg.enable_pcpg)
            for chip in self.chips
        )

    def solar_step(self, ctx: StepContext) -> StepSample:
        cfg = self.cfg
        chips = self.chips
        minute = ctx.minute
        if minute - self._last_alloc >= cfg.tracking_interval_min:
            budget = ctx.mpp.power * (1.0 - cfg.power_margin)
            shares = divide_budget(
                chips, budget, minute, self.division_policy, cfg.enable_pcpg
            )
            for chip, share in zip(chips, shares):
                if share > 0.0:
                    allocate_budget(
                        chip, share, minute, allow_gating=cfg.enable_pcpg
                    )
            self._last_alloc = minute
        rack_power = sum(chip.total_power_at(minute) for chip in chips)
        drawn = min(rack_power, ctx.mpp.power)
        retired_step = 0.0
        for j, chip in enumerate(chips):
            advanced = chip.advance(minute, ctx.dt)
            self.retired[j] += advanced
            retired_step += advanced
        return StepSample(
            consumed_w=drawn,
            throughput_gips=sum(c.total_throughput_at(minute) for c in chips),
            retired_ginst=retired_step,
        )

    def utility_step(self, ctx: StepContext) -> StepSample:
        minute = ctx.minute
        grid = 0.0
        for chip in self.chips:
            chip.ungate_all()
            chip.set_all_max()
            grid += chip.total_power_at(minute)
            chip.advance(minute, ctx.dt)
        self._last_alloc = -float("inf")
        return StepSample(
            consumed_w=0.0,
            throughput_gips=sum(
                c.total_throughput_at(minute) for c in self.chips
            ),
            utility_w=grid,
        )


class RackRecorder(SeriesRecorder):
    """Builds :class:`RackDayResult` from the base series plus the
    policy's per-node retirement accounting."""

    def __init__(
        self, mix_names: tuple[str, ...], location: Location, month: int,
        division_policy: str,
    ) -> None:
        super().__init__()
        self.mix_names = tuple(mix_names)
        self.location = location
        self.month = month
        self.division_policy = division_policy

    def build(self, engine: DayEngine) -> RackDayResult:
        return RackDayResult(
            mix_names=self.mix_names,
            location_code=self.location.code,
            month=self.month,
            policy=self.division_policy,
            minutes=np.array(self.minutes),
            mpp_w=np.array(self.mpp_w),
            consumed_w=np.array(self.consumed_w),
            throughput_gips=np.array(self.throughput),
            on_solar=np.array(self.on_solar, dtype=bool),
            retired_ginst=tuple(engine.policy.retired),
        )


def rack_day_engine(
    mix_names: tuple[str, ...],
    location: Location,
    month: int,
    policy: str = "tpr",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    faults=None,
) -> DayEngine:
    """The configured :class:`DayEngine` behind :func:`run_day_rack`."""
    from repro.faults import build_fault_kit

    if not mix_names:
        raise ValueError("a rack needs at least one chip")
    cfg = config or SolarCoreConfig()
    array = array or PVArray(modules_parallel=len(mix_names))
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)
    kit = build_fault_kit(faults)
    if kit is not None:
        array = kit.wrap_array(array)
    supply = RackPolicy(tuple(mix_names), policy, cfg)
    return DayEngine(
        array=array,
        trace=trace,
        config=cfg,
        policy=supply,
        recorder=RackRecorder(tuple(mix_names), location, month, policy),
        telemetry=telemetry_hub.current(),
        span_name="run_day_rack",
        span_attrs=dict(
            chips=len(mix_names), location=location.code, month=month,
            policy=policy,
        ),
        faults=kit.scheduler if kit is not None else None,
    )


def run_day_rack(
    mix_names: tuple[str, ...],
    location: Location,
    month: int,
    policy: str = "tpr",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    faults=None,
) -> RackDayResult:
    """Simulate one day of a rack of chips on a shared solar farm.

    Args:
        mix_names: One Table 5 mix per chip (rack size = len(mix_names)).
        location: Station to simulate.
        month: Calendar month.
        policy: Budget-division policy (``equal``/``proportional``/``tpr``).
        config: Simulation configuration.
        array: The farm; defaults to one BP3180N string per chip, two in
            parallel (a chip plus its share of rack overhead).
        trace: Pre-generated environment trace.
        seed: Environment seed when ``trace`` is not given.
    """
    engine = rack_day_engine(
        mix_names, location, month, policy, config, array, trace, seed, faults
    )
    return engine.run()
