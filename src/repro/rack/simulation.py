"""Day-long rack simulation: N chips on one solar farm.

The rack coordinator tracks the farm's MPP (assumed ideal at this level —
each chip's local behaviour was validated in :mod:`repro.core`), divides
the budget by the configured policy, and each chip's local allocator
spends its share via TPR-greedy level assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.fixed_power import allocate_budget
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.multicore.chip import MultiCoreChip
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.rack.coordinator import divide_budget
from repro.telemetry import hub as telemetry_hub
from repro.workloads.mixes import mix as mix_by_name

__all__ = ["RackDayResult", "run_day_rack"]


@dataclass(frozen=True)
class RackDayResult:
    """Measurements of one rack day.

    Attributes:
        mix_names: Workload mix per chip.
        location_code: Station code.
        month: Calendar month.
        policy: Budget-division policy.
        minutes: Sample times.
        mpp_w: Farm MPP power per step [W].
        consumed_w: Rack power drawn from the farm per step [W].
        throughput_gips: Rack throughput per step.
        on_solar: Whether the rack ran from the farm per step.
        retired_ginst: Instructions retired while solar-powered, per chip.
    """

    mix_names: tuple[str, ...]
    location_code: str
    month: int
    policy: str
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    throughput_gips: np.ndarray
    on_solar: np.ndarray
    retired_ginst: tuple[float, ...]

    @property
    def total_ptp(self) -> float:
        """Rack-wide solar-powered instructions [Ginst]."""
        return float(sum(self.retired_ginst))

    @property
    def energy_utilization(self) -> float:
        """Consumed / available farm energy."""
        available = float(np.sum(self.mpp_w))
        if available <= 0.0:
            return 0.0
        return float(np.sum(self.consumed_w[self.on_solar])) / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime on solar."""
        return float(np.mean(self.on_solar))


def run_day_rack(
    mix_names: tuple[str, ...],
    location: Location,
    month: int,
    policy: str = "tpr",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
) -> RackDayResult:
    """Simulate one day of a rack of chips on a shared solar farm.

    Args:
        mix_names: One Table 5 mix per chip (rack size = len(mix_names)).
        location: Station to simulate.
        month: Calendar month.
        policy: Budget-division policy (``equal``/``proportional``/``tpr``).
        config: Simulation configuration.
        array: The farm; defaults to one BP3180N string per chip, two in
            parallel (a chip plus its share of rack overhead).
        trace: Pre-generated environment trace.
        seed: Environment seed when ``trace`` is not given.
    """
    if not mix_names:
        raise ValueError("a rack needs at least one chip")
    cfg = config or SolarCoreConfig()
    array = array or PVArray(modules_parallel=len(mix_names))
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    tel = telemetry_hub.current()
    with tel.span(
        "run_day_rack",
        chips=len(mix_names),
        location=location.code,
        month=month,
        policy=policy,
    ):
        return _run_day_rack_inner(mix_names, location, month, policy, cfg, array, trace)


def _run_day_rack_inner(
    mix_names: tuple[str, ...],
    location: Location,
    month: int,
    policy: str,
    cfg: SolarCoreConfig,
    array: PVArray,
    trace: EnvironmentTrace,
) -> RackDayResult:
    chips = [
        MultiCoreChip(mix_by_name(name), seed=1000 + 17 * i)
        for i, name in enumerate(mix_names)
    ]
    ats = AutomaticTransferSwitch(cfg.ats_margin)
    dt = cfg.step_minutes
    last_alloc = -float("inf")

    minutes, mpps, consumed, throughput, on_solar = [], [], [], [], []
    retired = [0.0] * len(chips)

    for i in range(len(trace.minutes) - 1):
        minute = float(trace.minutes[i])
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        mpp = find_mpp(array, irradiance, cell_temp)

        rack_floor = sum(
            chip.floor_power_at(minute, with_gating=cfg.enable_pcpg)
            for chip in chips
        )
        source = ats.update(mpp.power, rack_floor)
        if source is PowerSource.SOLAR:
            if minute - last_alloc >= cfg.tracking_interval_min:
                budget = mpp.power * (1.0 - cfg.power_margin)
                shares = divide_budget(
                    chips, budget, minute, policy, cfg.enable_pcpg
                )
                for chip, share in zip(chips, shares):
                    if share > 0.0:
                        allocate_budget(
                            chip, share, minute, allow_gating=cfg.enable_pcpg
                        )
                last_alloc = minute
            rack_power = sum(chip.total_power_at(minute) for chip in chips)
            drawn = min(rack_power, mpp.power)
            for j, chip in enumerate(chips):
                retired[j] += chip.advance(minute, dt)
            minutes.append(minute)
            mpps.append(mpp.power)
            consumed.append(drawn)
            throughput.append(sum(c.total_throughput_at(minute) for c in chips))
            on_solar.append(True)
        else:
            for chip in chips:
                chip.ungate_all()
                chip.set_all_levels(chip.table.max_level)
                chip.advance(minute, dt)
            minutes.append(minute)
            mpps.append(mpp.power)
            consumed.append(0.0)
            throughput.append(sum(c.total_throughput_at(minute) for c in chips))
            on_solar.append(False)
            last_alloc = -float("inf")

    return RackDayResult(
        mix_names=tuple(mix_names),
        location_code=location.code,
        month=month,
        policy=policy,
        minutes=np.array(minutes),
        mpp_w=np.array(mpps),
        consumed_w=np.array(consumed),
        throughput_gips=np.array(throughput),
        on_solar=np.array(on_solar, dtype=bool),
        retired_ginst=tuple(retired),
    )
