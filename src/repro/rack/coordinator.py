"""Rack-scale budget coordination over a shared solar farm.

The paper's introduction motivates SolarCore with datacenter deployments
(Google/Microsoft/Yahoo solar farms).  This extension scales the
single-chip scheme up one level: a rack of chips shares one PV farm, a
rack coordinator tracks the farm's MPP and divides the harvested budget
across chips, and each chip's local allocator (the Fixed-Power TPR-greedy
machinery) spends its share.

Division policies mirror the paper's per-core ones, one level up:

* ``equal``        — every chip gets the same share (rack-level RR);
* ``proportional`` — shares scale with each chip's maximum demand;
* ``tpr``          — water-filling by marginal throughput per watt
  (rack-level Opt): each budget quantum goes to the chip whose next
  DVFS step buys the most instructions.
"""

from __future__ import annotations

import logging

from repro.core.tpr import upgrade_tpr
from repro.multicore.chip import MultiCoreChip
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.events import RackDivisionEvent

__all__ = ["divide_budget", "DIVISION_POLICIES"]

log = logging.getLogger(__name__)

DIVISION_POLICIES = ("equal", "proportional", "tpr")


def _floors(chips: list[MultiCoreChip], minute: float, gating: bool) -> list[float]:
    return [chip.floor_power_at(minute, with_gating=gating) for chip in chips]


def divide_budget(
    chips: list[MultiCoreChip],
    budget_w: float,
    minute: float,
    policy: str = "tpr",
    allow_gating: bool = True,
) -> list[float]:
    """Split a rack budget across chips; returns one share per chip [W].

    Shares always cover each chip's floor when the budget allows; a budget
    below the sum of floors returns all-zero shares (the rack falls back to
    the utility).

    Args:
        chips: The rack's chips.
        budget_w: Harvested rack budget [W].
        minute: Simulation time (phase IPCs are time-dependent).
        policy: ``equal``, ``proportional``, or ``tpr``.
        allow_gating: Whether chip floors assume PCPG.
    """
    if not chips:
        raise ValueError("a rack needs at least one chip")
    if policy not in DIVISION_POLICIES:
        raise KeyError(
            f"unknown division policy {policy!r}; known: {DIVISION_POLICIES}"
        )
    tel = telemetry_hub.current()
    with tel.span("rack.divide_budget", policy=policy):
        shares = _divide(chips, budget_w, minute, policy, allow_gating)
    if tel.enabled:
        tel.count("rack.divisions")
        tel.emit(
            RackDivisionEvent(
                minute=minute,
                policy=policy,
                budget_w=budget_w,
                shares_w=tuple(shares),
            )
        )
    return shares


def _divide(
    chips: list[MultiCoreChip],
    budget_w: float,
    minute: float,
    policy: str,
    allow_gating: bool,
) -> list[float]:
    floors = _floors(chips, minute, allow_gating)
    if budget_w < sum(floors):
        return [0.0] * len(chips)

    if policy == "equal":
        surplus = budget_w - sum(floors)
        return [floor + surplus / len(chips) for floor in floors]

    if policy == "proportional":
        maxima = [chip.max_power_at(minute) for chip in chips]
        headrooms = [m - f for m, f in zip(maxima, floors)]
        total_headroom = sum(headrooms)
        surplus = budget_w - sum(floors)
        if total_headroom <= 0:
            return list(floors)
        return [
            floor + surplus * headroom / total_headroom
            for floor, headroom in zip(floors, headrooms)
        ]

    # TPR water-filling: simulate greedy upgrades against virtual budgets.
    shares = list(floors)
    # Work on scratch level assignments so the real chips are untouched.
    saved_levels = [chip.levels for chip in chips]
    saved_gates = [[core.gated for core in chip.cores] for chip in chips]
    try:
        for chip in chips:
            chip.ungate_all()
            chip.set_all_min()
        remaining = budget_w - sum(floors)
        while remaining > 0:
            best_chip_idx = None
            best_tpr = float("-inf")
            best_delta = 0.0
            for i, chip in enumerate(chips):
                for core in chip.cores:
                    tpr = upgrade_tpr(core, minute)
                    if tpr is None or tpr <= best_tpr:
                        continue
                    delta = (
                        core.power_at_level(core.level + 1, minute)
                        - core.power_at(minute)
                    )
                    if delta <= remaining:
                        best_chip_idx, best_tpr, best_delta = i, tpr, delta
                        best_core = core
            if best_chip_idx is None:
                break
            best_core.set_level(best_core.level + 1)
            shares[best_chip_idx] += best_delta
            remaining -= best_delta
        return shares
    finally:
        for chip, levels, gates in zip(chips, saved_levels, saved_gates):
            chip.set_levels(levels)
            for core, gated in zip(chip.cores, gates):
                if gated:
                    core.gate()
                else:
                    core.ungate()
