"""Rack-scale extension: many chips sharing one solar farm."""

from repro.rack.coordinator import DIVISION_POLICIES, divide_budget
from repro.rack.simulation import (
    RackDayResult,
    RackPolicy,
    rack_day_engine,
    run_day_rack,
)

__all__ = [
    "divide_budget",
    "DIVISION_POLICIES",
    "RackDayResult",
    "RackPolicy",
    "rack_day_engine",
    "run_day_rack",
]
