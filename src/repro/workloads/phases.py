"""Phase-level IPC traces: the trace-driven substitute for cycle simulation.

Real programs execute as a sequence of phases with distinct IPC; the
SolarCore controller samples IPC through performance counters at each
tracking period.  ``PhaseTrace`` generates a deterministic piecewise-constant
IPC signal per (benchmark, seed): phase durations are exponential around the
benchmark's mean phase length and phase IPCs wander around the base IPC with
the benchmark's variability amplitude.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right

import numpy as np

from repro.workloads.benchmarks import Benchmark

__all__ = ["PhaseTrace", "cached_phase_trace"]

#: Hard floor on phase IPC, as a fraction of base IPC.
_MIN_IPC_FRACTION = 0.2


class PhaseTrace:
    """Deterministic piecewise-constant IPC as a function of time.

    Args:
        bench: The benchmark whose phase behaviour to generate.
        duration_minutes: Time span the trace must cover.
        seed: RNG seed; defaults to a stable hash of the benchmark name.
    """

    def __init__(
        self,
        bench: Benchmark,
        duration_minutes: float = 600.0,
        seed: int | None = None,
    ) -> None:
        if duration_minutes <= 0:
            raise ValueError(f"duration must be positive, got {duration_minutes}")
        if seed is None:
            seed = zlib.crc32(f"phase:{bench.name}".encode())
        self.bench = bench
        rng = np.random.default_rng(seed)

        boundaries = [0.0]
        ipcs = []
        # AR(1) wander of per-phase IPC around the base value.
        deviation = 0.0
        while boundaries[-1] < duration_minutes:
            boundaries.append(
                boundaries[-1] + float(rng.exponential(bench.phase_minutes))
            )
            deviation = 0.6 * deviation + rng.normal(0.0, bench.ipc_variability)
            factor = float(np.clip(1.0 + deviation, _MIN_IPC_FRACTION, 2.0))
            ipcs.append(bench.base_ipc * factor)
        self._boundaries = np.array(boundaries)
        self._ipcs = np.array(ipcs)
        # Plain-python twins of the arrays plus a one-entry memo: the
        # controller samples IPC dozens of times at the *same* frozen
        # minute within one tracking event, and a scalar np.searchsorted
        # per sample dominated the table-solver profile.
        self._boundaries_list = boundaries
        self._ipcs_list = [float(v) for v in self._ipcs]
        self._memo_minute: float | None = None
        self._memo_ipc = 0.0

    def ipc_at(self, minute: float) -> float:
        """Phase IPC at an absolute time [minutes from trace start].

        Times beyond the generated span clamp to the final phase (programs
        re-run from representative intervals, as in the paper's methodology).
        """
        if minute == self._memo_minute:
            return self._memo_ipc
        if minute < 0:
            raise ValueError(f"minute must be non-negative, got {minute}")
        # bisect_right on the python list returns exactly np.searchsorted
        # (side="right") for float inputs — the memoized fast path is
        # byte-identical to the original lookup.
        idx = bisect_right(self._boundaries_list, minute) - 1
        idx = min(idx, len(self._ipcs_list) - 1)
        ipc = self._ipcs_list[idx]
        self._memo_minute = minute
        self._memo_ipc = ipc
        return ipc

    def ipc_array(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ipc_at`: phase IPC at each time in ``minutes``.

        Same lookup (right-sided bisection, final-phase clamp) evaluated
        for a whole array of non-negative times at once.
        """
        m = np.asarray(minutes, dtype=np.float64)
        idx = np.searchsorted(self._boundaries, m, side="right") - 1
        idx = np.minimum(idx, len(self._ipcs) - 1)
        return self._ipcs[idx]

    @property
    def n_phases(self) -> int:
        """Number of generated phases."""
        return len(self._ipcs)


_TRACE_CACHE: dict[tuple, PhaseTrace] = {}
_TRACE_CACHE_MAX = 512


def cached_phase_trace(
    bench: Benchmark,
    duration_minutes: float = 600.0,
    seed: int | None = None,
) -> PhaseTrace:
    """A shared :class:`PhaseTrace` for ``(bench, duration, seed)``.

    Traces are deterministic functions of their arguments and read-only
    after construction, so benchmark sweeps that rebuild the same chip
    hundreds of times can share one instance instead of replaying the
    phase RNG each run.  The cache is cleared wholesale when it fills.
    """
    key = (bench, duration_minutes, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.clear()
        trace = PhaseTrace(bench, duration_minutes, seed=seed)
        _TRACE_CACHE[key] = trace
    return trace
