"""Phase-level IPC traces: the trace-driven substitute for cycle simulation.

Real programs execute as a sequence of phases with distinct IPC; the
SolarCore controller samples IPC through performance counters at each
tracking period.  ``PhaseTrace`` generates a deterministic piecewise-constant
IPC signal per (benchmark, seed): phase durations are exponential around the
benchmark's mean phase length and phase IPCs wander around the base IPC with
the benchmark's variability amplitude.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.workloads.benchmarks import Benchmark

__all__ = ["PhaseTrace"]

#: Hard floor on phase IPC, as a fraction of base IPC.
_MIN_IPC_FRACTION = 0.2


class PhaseTrace:
    """Deterministic piecewise-constant IPC as a function of time.

    Args:
        bench: The benchmark whose phase behaviour to generate.
        duration_minutes: Time span the trace must cover.
        seed: RNG seed; defaults to a stable hash of the benchmark name.
    """

    def __init__(
        self,
        bench: Benchmark,
        duration_minutes: float = 600.0,
        seed: int | None = None,
    ) -> None:
        if duration_minutes <= 0:
            raise ValueError(f"duration must be positive, got {duration_minutes}")
        if seed is None:
            seed = zlib.crc32(f"phase:{bench.name}".encode())
        self.bench = bench
        rng = np.random.default_rng(seed)

        boundaries = [0.0]
        ipcs = []
        # AR(1) wander of per-phase IPC around the base value.
        deviation = 0.0
        while boundaries[-1] < duration_minutes:
            boundaries.append(
                boundaries[-1] + float(rng.exponential(bench.phase_minutes))
            )
            deviation = 0.6 * deviation + rng.normal(0.0, bench.ipc_variability)
            factor = float(np.clip(1.0 + deviation, _MIN_IPC_FRACTION, 2.0))
            ipcs.append(bench.base_ipc * factor)
        self._boundaries = np.array(boundaries)
        self._ipcs = np.array(ipcs)

    def ipc_at(self, minute: float) -> float:
        """Phase IPC at an absolute time [minutes from trace start].

        Times beyond the generated span clamp to the final phase (programs
        re-run from representative intervals, as in the paper's methodology).
        """
        if minute < 0:
            raise ValueError(f"minute must be non-negative, got {minute}")
        idx = int(np.searchsorted(self._boundaries, minute, side="right")) - 1
        idx = min(idx, len(self._ipcs) - 1)
        return float(self._ipcs[idx])

    @property
    def n_phases(self) -> int:
        """Number of generated phases."""
        return len(self._ipcs)
