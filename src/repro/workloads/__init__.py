"""Workload substrate: SPEC2000-class benchmarks, phase traces, and mixes."""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    EPI_CLASSES,
    Benchmark,
    benchmark,
    epi_class_of,
)
from repro.workloads.mixes import (
    ALL_MIX_NAMES,
    MIXES,
    WorkloadMix,
    mix,
    resolve_mix,
)
from repro.workloads.phases import PhaseTrace

__all__ = [
    "Benchmark",
    "benchmark",
    "BENCHMARKS",
    "EPI_CLASSES",
    "epi_class_of",
    "PhaseTrace",
    "WorkloadMix",
    "mix",
    "resolve_mix",
    "MIXES",
    "ALL_MIX_NAMES",
]
