"""The multi-programmed workload mixes of the paper's Table 5.

Each mix assigns one benchmark per core of the 8-core chip:

    H1  art x8                          H2  art x2, apsi x2, bzip x2, gzip x2
    M1  gcc x8                          M2  gcc x2, mcf x2, gap x2, vpr x2
    L1  mesa x8                         L2  mesa x2, equake x2, lucas x2, swim x2
    HM1 bzip x4, gcc x4                 HM2 bzip, gzip, art, apsi, gcc, mcf, gap, vpr
    ML1 gcc x4, mesa x4                 ML2 gcc, mcf, gap, vpr, mesa, equake, lucas, swim
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.benchmarks import Benchmark, benchmark

__all__ = ["WorkloadMix", "MIXES", "mix", "ALL_MIX_NAMES", "MIX_ALIASES"]


@dataclass(frozen=True)
class WorkloadMix:
    """A named assignment of benchmarks to cores.

    Attributes:
        name: Mix identifier from Table 5 (e.g. ``"HM2"``).
        benchmarks: One benchmark per core, in core order.
    """

    name: str
    benchmarks: tuple[Benchmark, ...]

    @property
    def n_cores(self) -> int:
        """Number of cores the mix targets."""
        return len(self.benchmarks)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every core runs the same benchmark."""
        return len({b.name for b in self.benchmarks}) == 1


def _make(name: str, *bench_names: str) -> WorkloadMix:
    return WorkloadMix(name, tuple(benchmark(b) for b in bench_names))


MIXES: dict[str, WorkloadMix] = {
    m.name: m
    for m in (
        _make("H1", *["art"] * 8),
        _make("H2", "art", "art", "apsi", "apsi", "bzip", "bzip", "gzip", "gzip"),
        _make("M1", *["gcc"] * 8),
        _make("M2", "gcc", "gcc", "mcf", "mcf", "gap", "gap", "vpr", "vpr"),
        _make("L1", *["mesa"] * 8),
        _make("L2", "mesa", "mesa", "equake", "equake", "lucas", "lucas", "swim", "swim"),
        _make("HM1", "bzip", "bzip", "bzip", "bzip", "gcc", "gcc", "gcc", "gcc"),
        _make("HM2", "bzip", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"),
        _make("ML1", "gcc", "gcc", "gcc", "gcc", "mesa", "mesa", "mesa", "mesa"),
        _make("ML2", "gcc", "mcf", "gap", "vpr", "mesa", "equake", "lucas", "swim"),
    )
}

#: Mix names in the paper's presentation order.
ALL_MIX_NAMES = ("H1", "H2", "M1", "M2", "L1", "L2", "HM1", "HM2", "ML1", "ML2")

#: Convenience aliases accepted by :func:`mix` next to the Table 5 names.
MIX_ALIASES = {
    "MIXED": "HM2",  # the fully heterogeneous 8-benchmark mix
    "HIGH": "H1",
    "MEDIUM": "M1",
    "LOW": "L1",
}


def mix(name: str) -> WorkloadMix:
    """Look up a workload mix by Table 5 name or alias (case-insensitive)."""
    key = name.upper()
    key = MIX_ALIASES.get(key, key)
    try:
        return MIXES[key]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r}; known: {', '.join(ALL_MIX_NAMES)} "
            f"(aliases: {', '.join(sorted(MIX_ALIASES))})"
        ) from None


def resolve_mix(workload: "WorkloadMix | str") -> WorkloadMix:
    """Normalize a mix given by name (or alias) to the mix object itself.

    The single workload-resolution helper shared by every ``run_day*``
    entry point.
    """
    if isinstance(workload, str):
        return mix(workload)
    return workload
