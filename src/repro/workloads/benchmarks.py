"""The SPEC CPU2000 benchmark stand-ins used by the paper (Table 5).

The paper characterizes each benchmark by its average energy-per-instruction
(EPI) at the top operating point and groups them into classes:

    high      EPI >= 15 nJ    art, apsi, bzip, gzip
    moderate  8 <= EPI < 15   gcc, mcf, gap, vpr
    low       EPI <= 8 nJ     mesa, equake, lucas, swim

Each benchmark also carries a base IPC and a phase-variability amplitude;
high-EPI programs show larger power swings (the paper's Figure 13/14 ripple
discussion).  EPI and IPC are calibrated so an 8-core chip at the top V/F
draws ~70-140 W — the regime of a BP3180N-class panel.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Benchmark", "EPI_CLASSES", "BENCHMARKS", "benchmark", "epi_class_of"]


@dataclass(frozen=True)
class Benchmark:
    """A SPEC2000-class program characterized at the top operating point.

    Attributes:
        name: SPEC benchmark name.
        epi_nj: Average energy per instruction [nJ] at max V/F.
        base_ipc: Mean instructions-per-cycle over the run.
        ipc_variability: Fractional amplitude of phase-level IPC swings.
        phase_minutes: Mean duration of a program phase [minutes].
    """

    name: str
    epi_nj: float
    base_ipc: float
    ipc_variability: float
    phase_minutes: float = 4.0

    def __post_init__(self) -> None:
        if self.epi_nj <= 0:
            raise ValueError(f"epi_nj must be positive, got {self.epi_nj}")
        if self.base_ipc <= 0:
            raise ValueError(f"base_ipc must be positive, got {self.base_ipc}")
        if not 0.0 <= self.ipc_variability < 1.0:
            raise ValueError(
                f"ipc_variability must be in [0, 1), got {self.ipc_variability}"
            )

    @property
    def epi_class(self) -> str:
        """EPI class per the paper's thresholds: high/moderate/low."""
        return epi_class_of(self.epi_nj)


def epi_class_of(epi_nj: float) -> str:
    """Classify an EPI value by the paper's thresholds (Section 5).

    A tiny tolerance keeps boundary benchmarks (gzip sits exactly at the
    15 nJ edge) stably classified under measurement rounding.
    """
    tolerance = 1e-6
    if epi_nj >= 15.0 - tolerance:
        return "high"
    if epi_nj > 8.0 + tolerance:
        return "moderate"
    return "low"


#: EPI class -> benchmark names (paper Table 5 groupings).
EPI_CLASSES = {
    "high": ("art", "apsi", "bzip", "gzip"),
    "moderate": ("gcc", "mcf", "gap", "vpr"),
    "low": ("mesa", "equake", "lucas", "swim"),
}

BENCHMARKS: dict[str, Benchmark] = {
    b.name: b
    for b in (
        # High EPI: energy-hungry per instruction, big phase swings.
        Benchmark("art", epi_nj=16.5, base_ipc=0.42, ipc_variability=0.28),
        Benchmark("apsi", epi_nj=15.8, base_ipc=0.43, ipc_variability=0.22),
        Benchmark("bzip", epi_nj=15.2, base_ipc=0.44, ipc_variability=0.24),
        Benchmark("gzip", epi_nj=15.0, base_ipc=0.44, ipc_variability=0.20),
        # Moderate EPI.
        Benchmark("gcc", epi_nj=11.5, base_ipc=0.56, ipc_variability=0.15),
        Benchmark("mcf", epi_nj=12.5, base_ipc=0.50, ipc_variability=0.18),
        Benchmark("gap", epi_nj=10.0, base_ipc=0.64, ipc_variability=0.12),
        Benchmark("vpr", epi_nj=11.0, base_ipc=0.57, ipc_variability=0.14),
        # Low EPI: efficient (high throughput per watt), steady phases.
        Benchmark("mesa", epi_nj=7.0, base_ipc=0.88, ipc_variability=0.08),
        Benchmark("equake", epi_nj=7.5, base_ipc=0.81, ipc_variability=0.10),
        Benchmark("lucas", epi_nj=6.5, base_ipc=0.92, ipc_variability=0.08),
        Benchmark("swim", epi_nj=6.0, base_ipc=1.03, ipc_variability=0.09),
    )
}


def benchmark(name: str) -> Benchmark:
    """Look up a benchmark by SPEC name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(BENCHMARKS))}"
        ) from None
