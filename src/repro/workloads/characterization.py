"""Workload characterization: measuring EPI the way the paper does.

Paper Section 5: "We run each benchmark in their representative execution
intervals and the EPI is obtained by calculating the average energy
consumed per-instruction" — then programs are binned as high (>= 15 nJ),
moderate (8-15 nJ), or low (<= 8 nJ) EPI.

:func:`measure_epi` performs that measurement against the simulated core
(it integrates energy and instructions over an interval at the top
operating point and divides), and :func:`characterize` reproduces the
full Table 5 classification from measurements rather than labels — closing
the loop between the configured benchmark parameters and what the
methodology would observe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.core import Core
from repro.multicore.power_model import CorePowerModel
from repro.workloads.benchmarks import BENCHMARKS, Benchmark, epi_class_of

__all__ = ["EPIMeasurement", "measure_epi", "characterize"]


@dataclass(frozen=True)
class EPIMeasurement:
    """Measured characteristics of one benchmark.

    Attributes:
        name: Benchmark name.
        epi_nj: Measured average energy per instruction [nJ] (dynamic
            energy only, at the top operating point — the paper's basis).
        mean_ipc: Measured average IPC over the interval.
        epi_class: Classification by the paper's thresholds.
    """

    name: str
    epi_nj: float
    mean_ipc: float
    epi_class: str


def measure_epi(
    bench: Benchmark,
    power_model: CorePowerModel,
    interval_minutes: float = 120.0,
    sample_minutes: float = 1.0,
    seed: int | None = None,
) -> EPIMeasurement:
    """Measure a benchmark's average EPI on a simulated core.

    Runs the core at the top operating point over a representative
    interval, integrating dynamic energy and retired instructions — the
    quotient is the EPI the paper's Table 5 reports.

    Args:
        bench: The benchmark to characterize.
        power_model: The core power model to measure against.
        interval_minutes: Length of the representative interval.
        sample_minutes: Integration step.
        seed: Phase-trace seed.

    Returns:
        The :class:`EPIMeasurement`.
    """
    if interval_minutes <= 0 or sample_minutes <= 0:
        raise ValueError("interval and sample steps must be positive")
    core = Core(0, bench, power_model, seed=seed)
    core.set_level(core.table.max_level)

    energy_j = 0.0
    instructions_g = 0.0
    ipc_sum = 0.0
    samples = 0
    minute = 0.0
    while minute < interval_minutes:
        ipc = core.ipc_at(minute)
        dynamic_w = power_model.dynamic_power(core.level, bench.epi_nj, ipc)
        throughput = power_model.throughput_gips(core.level, ipc)
        energy_j += dynamic_w * sample_minutes * 60.0
        instructions_g += throughput * sample_minutes * 60.0
        ipc_sum += ipc
        samples += 1
        minute += sample_minutes

    epi_nj = energy_j / instructions_g if instructions_g > 0 else 0.0
    return EPIMeasurement(
        name=bench.name,
        epi_nj=epi_nj,
        mean_ipc=ipc_sum / samples,
        epi_class=epi_class_of(epi_nj),
    )


def characterize(
    power_model: CorePowerModel,
    benchmarks: dict[str, Benchmark] | None = None,
) -> dict[str, EPIMeasurement]:
    """Measure every benchmark and classify it (the Table 5 procedure)."""
    return {
        name: measure_epi(bench, power_model)
        for name, bench in (benchmarks or BENCHMARKS).items()
    }
