"""Campaign checkpointing: crash-safe, resumable sweep progress.

A long sweep that dies at cell 4 990 of 5 000 should not cost 4 990
recomputes.  :class:`SweepCheckpoint` persists completed results to a
single pickle file with the same atomic-replace discipline as the disk
cache, and validates the same identity (format version, code
fingerprint, config key) on load — a checkpoint written by different
code or a different configuration is ignored with a warning, never
silently resumed.

The checkpoint is *explicitly* loaded (``--resume`` on the CLI): a fresh
campaign run over an existing file overwrites it rather than resuming,
so stale progress can never contaminate a deliberate recompute.

Unlike the content-addressed :class:`~repro.harness.parallel.DiskResultCache`
(one file per result, shared across campaigns), a checkpoint is one
campaign's progress log: a single file the user can point ``--resume``
at, copy between machines, or delete as a unit.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
from pathlib import Path

from repro.core.config import SolarCoreConfig
from repro.harness.parallel import (
    CACHE_FORMAT_VERSION,
    SweepTask,
    code_fingerprint,
    config_key,
)

__all__ = ["SweepCheckpoint"]

log = logging.getLogger(__name__)


class SweepCheckpoint:
    """Periodic atomic snapshot of a sweep's completed cells.

    Args:
        path: Checkpoint file (created on first flush).
        config: The sweep's configuration; a checkpoint recorded under a
            different config never resumes.
        flush_every: Write the file after every N newly recorded results
            (and always on :meth:`flush`).
        fingerprint: Code-fingerprint override (tests model code changes
            with this; defaults to :func:`code_fingerprint`).
    """

    def __init__(
        self,
        path: str | Path,
        config: SolarCoreConfig,
        flush_every: int = 8,
        fingerprint: str | None = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = flush_every
        self.fingerprint = fingerprint or code_fingerprint()
        self._cfg_key = config_key(config)
        self._entries: dict[tuple, object] = {}
        self._unflushed = 0
        self.restored = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, task: SweepTask) -> tuple:
        return task.cache_key(self._cfg_key)

    def load(self) -> int:
        """Restore entries from disk (the ``--resume`` path).

        Returns the number of entries restored.  A missing file is a
        clean start; a corrupt file or one written by different code /
        format / config is ignored with a warning — resuming it could
        mix results from two different simulations.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        try:
            payload = pickle.loads(raw)
            if payload["format"] != CACHE_FORMAT_VERSION:
                raise ValueError(
                    f"checkpoint format {payload['format']} != "
                    f"{CACHE_FORMAT_VERSION}"
                )
            if payload["fingerprint"] != self.fingerprint:
                raise ValueError("code fingerprint mismatch")
            if payload["cfg_key"] != self._cfg_key:
                raise ValueError("config mismatch")
            entries = payload["entries"]
        except Exception as exc:  # noqa: BLE001 — any decode failure restarts
            log.warning(
                "ignoring unusable checkpoint %s (%s: %s); starting fresh",
                self.path, type(exc).__name__, exc,
            )
            return 0
        self._entries.update(entries)
        self.restored = len(entries)
        log.info(
            "resumed checkpoint %s: %d completed task(s)",
            self.path, self.restored,
        )
        return self.restored

    def get(self, task: SweepTask):
        """The recorded result for ``task``, or None."""
        return self._entries.get(self._key(task))

    def record(self, task: SweepTask, result) -> None:
        """Record a completed task; flushes every ``flush_every`` records."""
        self._entries[self._key(task)] = result
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically persist all recorded entries (tmp + ``os.replace``)."""
        if self._unflushed == 0 and self.path.exists():
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {
                "format": CACHE_FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "cfg_key": self._cfg_key,
                "entries": self._entries,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError as exc:
                log.warning(
                    "could not clean up checkpoint temp file %s: %s", tmp, exc
                )
            raise
        self._unflushed = 0
