"""ASCII rendering of experiment results in the paper's presentation style."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "render_table7",
    "render_fig18",
    "render_fig21_summary",
    "render_telemetry_summary",
    "sparkline",
]

_SPARK_CHARS = " .:-=+*#%@"


def format_table(
    headers: list[str],
    rows: list[list[str]],
) -> str:
    """Render a simple fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
    return "\n".join(lines)


def format_series(
    label: str,
    points: Iterable[tuple[float, float]],
    x_fmt: str = "{:.0f}",
    y_fmt: str = "{:.2f}",
) -> str:
    """Render an (x, y) series as one labelled line, paper-axis style."""
    cells = [f"{x_fmt.format(x)}:{y_fmt.format(y)}" for x, y in points]
    return f"{label:20s} " + "  ".join(cells)


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """A one-line ASCII intensity plot of a series (for tracking traces)."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        return ""
    if len(arr) > width:
        # Downsample by block mean.
        edges = np.linspace(0, len(arr), width + 1, dtype=int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    top = float(np.max(arr))
    if top <= 0:
        return " " * len(arr)
    scaled = np.clip(arr / top * (len(_SPARK_CHARS) - 1), 0, len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(v)] for v in scaled)


def render_table7(table: Mapping[tuple[str, int], Mapping[str, float]]) -> str:
    """Render the Table 7 grid: rows = (location, month), columns = mixes."""
    keys = sorted(table)
    mixes = list(next(iter(table.values())).keys())
    headers = ["site", "month"] + mixes
    rows = []
    for site, month in keys:
        row = [site, str(month)]
        row.extend(f"{table[(site, month)][m]:.1%}" for m in mixes)
        rows.append(row)
    return format_table(headers, rows)


def render_fig18(
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
    battery_bounds: Mapping[str, float],
) -> str:
    """Render Figure 18: per-location mean utilization per policy."""
    headers = ["site"] + list(next(iter(next(iter(data.values())).values())).keys())
    rows = []
    for site, per_mix in data.items():
        policies = headers[1:]
        means = {
            p: float(np.mean([per_mix[m][p] for m in per_mix])) for p in policies
        }
        rows.append([site] + [f"{means[p]:.1%}" for p in policies])
    bounds = ", ".join(f"{k}={v:.0%}" for k, v in battery_bounds.items())
    return format_table(headers, rows) + f"\n(battery bounds: {bounds})"


def render_telemetry_summary(telemetry=None) -> str:
    """Render the (current) telemetry hub's counters and span timings.

    The reporting-side hook for observability: benchmark scripts that
    already import :mod:`repro.harness.reporting` can print where a
    figure's simulation time went without importing the telemetry package
    directly.

    Args:
        telemetry: Hub to render (default: the process-wide hub).

    Returns:
        ASCII tables, or an empty string when telemetry is disabled.
    """
    from repro.telemetry import current, render_summary

    return render_summary(telemetry if telemetry is not None else current())


def render_fig21_summary(
    data: Mapping[tuple[str, int, str], Mapping[str, float]],
) -> str:
    """Render Figure 21 as grand means per policy (normalized to Battery-L)."""
    policies = list(next(iter(data.values())).keys())
    means = {
        p: float(np.mean([row[p] for row in data.values()])) for p in policies
    }
    headers = ["policy", "normalized PTP"]
    rows = [[p, f"{means[p]:.3f}"] for p in policies]
    return format_table(headers, rows)
