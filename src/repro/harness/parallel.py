"""Parallel sweep engine with a persistent, content-addressed result cache.

The paper's entire evaluation (Figures 13-21, Table 7) is a grid of
*independent* day simulations over (station x month x mix x policy).  This
module fans that grid out across worker processes and persists every
result to disk, keyed by the complete simulation identity:

* :class:`SweepTask` — one cell of the grid, a picklable value object
  naming the simulation kind (``mppt`` / ``fixed`` / ``battery``) and its
  coordinates.  :meth:`SweepTask.cache_key` is the single key used by the
  in-memory memo, the disk cache, and the worker protocol.
* :class:`DiskResultCache` — a content-addressed on-disk cache.  Entries
  are addressed by SHA-256 over (format version, code fingerprint, task
  key, config key); writes are atomic (``os.replace`` of a same-directory
  temp file); corrupt or mismatched entries are deleted with a warning and
  recomputed — never returned.
* :func:`run_parallel` — a ``ProcessPoolExecutor`` fan-out, chunked by
  (location, month) cell so each worker amortizes its per-cell state.
  Workers run under the null telemetry hub (no sinks of the parent leak
  into children); when the parent's hub is enabled each worker instead
  collects into a private hub and ships the counter/span snapshot back for
  the parent's post-run summary.

Determinism is a hard requirement: identical seeds yield byte-identical
:class:`~repro.core.simulation.DayResult` arrays whether computed serially,
in parallel, or read back from disk — enforced by the golden tests in
``tests/harness/test_parallel.py``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import random
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from functools import lru_cache
from pathlib import Path

from repro.core.config import SolarCoreConfig
from repro.core.simulation import (
    BatteryDayResult,
    DayResult,
    run_day,
    run_day_battery,
    run_day_fixed,
)
from repro.environment.locations import Location, location_by_code
from repro.faults.schedule import FaultSchedule
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.hub import Telemetry
from repro.telemetry.profiling import PhaseProfiler

__all__ = [
    "SweepTask",
    "SweepError",
    "TaskFailure",
    "SweepFailureReport",
    "DiskResultCache",
    "CacheLease",
    "compute_task",
    "run_parallel",
    "run_serial",
    "grid_tasks",
    "config_key",
    "code_fingerprint",
    "CACHE_FORMAT_VERSION",
]

log = logging.getLogger(__name__)

#: Bump to invalidate every existing disk-cache entry (layout changes,
#: semantic fixes that do not show up in the source fingerprint, ...).
#: v2: the unified DayEngine replaced the per-scenario day loops — caches
#: written by the forked-loop implementations are purged on first open.
#: v3: ChipSpec — ``SolarCoreConfig`` grew the ``chip_spec`` field, which
#: changes every ``config_key`` layout; pre-spec entries are purged loudly
#: on first open.
CACHE_FORMAT_VERSION = 3

#: Marker file recording which format a cache directory was written by.
#: Directories without it (all pre-v2 caches) are treated as stale.
_FORMAT_MARKER = "CACHE_FORMAT"

#: Task kinds, mirroring the three day-simulation entry points.
_KINDS = ("mppt", "fixed", "battery")


def config_key(config: SolarCoreConfig) -> tuple:
    """A hashable cache key over every config field.

    Fails loudly — naming the offending field — if a future
    :class:`SolarCoreConfig` gains an unhashable field, instead of raising
    a bare ``unhashable type`` deep inside a dict lookup.
    """
    key = []
    for f in fields(config):
        value = getattr(config, f.name)
        try:
            hash(value)
        except TypeError as exc:
            raise TypeError(
                f"SolarCoreConfig.{f.name} is not hashable "
                f"({type(value).__name__}: {value!r}); "
                "make the field hashable or exclude it from the cache key"
            ) from exc
        key.append(value)
    return tuple(key)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Any code change — a fixed bug, a new config default, a retuned model —
    changes the fingerprint and therefore invalidates every disk-cache
    entry, so a stale cache can never masquerade as current results.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class SweepTask:
    """One cell of the day-simulation grid.

    Attributes:
        kind: ``mppt`` (policy day), ``fixed`` (Fixed-Power baseline), or
            ``battery`` (battery-equipped baseline).
        mix_name: Table 5 workload mix.
        location_code: Station code (canonical, e.g. ``AZ``).
        month: Calendar month.
        policy: Load-adaptation policy (``mppt`` tasks).
        budget_w: Power-transfer threshold [W] (``fixed`` tasks).
        derating: Overall de-rating factor (``battery`` tasks).
        seed: Weather-realization seed, or None for the standard seeded
            trace of the (station, month).
        faults: Fault-schedule spec string (see
            :meth:`repro.faults.schedule.FaultSchedule.parse`), or None
            for a fault-free day.  Canonicalized on construction so
            equivalent spellings share a cache entry.
    """

    kind: str
    mix_name: str
    location_code: str
    month: int
    policy: str = "MPPT&Opt"
    budget_w: float | None = None
    derating: float | None = None
    seed: int | None = None
    faults: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind == "fixed" and self.budget_w is None:
            raise ValueError("fixed tasks require budget_w")
        if self.kind == "battery" and self.derating is None:
            raise ValueError("battery tasks require derating")
        # Canonicalize station aliases ("AZ" -> "PFCI") so the same
        # simulation always maps to the same cache key, however named.
        object.__setattr__(
            self, "location_code", location_by_code(self.location_code).code
        )
        if self.faults is not None:
            # Normalized spec (or None when it parses empty), so "none",
            # "", and reordered spellings all address the same entry.
            object.__setattr__(
                self, "faults", FaultSchedule.parse(self.faults).canonical() or None
            )

    @property
    def param(self) -> str | float:
        """The kind-specific knob: policy, budget, or derating."""
        if self.kind == "fixed":
            return self.budget_w
        if self.kind == "battery":
            return self.derating
        return self.policy

    @property
    def cell(self) -> tuple[str, int]:
        """The (location, month) cell the task belongs to."""
        return (self.location_code, self.month)

    def cache_key(self, cfg_key: tuple) -> tuple:
        """The complete simulation identity, for memo and disk caches."""
        return (
            self.kind,
            self.mix_name,
            self.location_code,
            self.month,
            self.param,
            self.seed,
            self.faults,
            cfg_key,
        )

    def describe(self) -> str:
        """Human-readable coordinates for logs and error messages."""
        text = (
            f"kind={self.kind} mix={self.mix_name} "
            f"location={self.location_code} month={self.month} "
            f"param={self.param}"
        )
        if self.seed is not None:
            text += f" seed={self.seed}"
        if self.faults is not None:
            text += f" faults={self.faults}"
        return text


class SweepError(RuntimeError):
    """A sweep task failed; the message carries the failing coordinates."""


@dataclass(frozen=True)
class TaskFailure:
    """One task that stayed failed after every retry wave.

    Attributes:
        task: The failing grid cell.
        error: ``TypeName: message`` of the last failure (or a timeout
            description).
        attempts: How many times the task was tried.
        timed_out: True when the last failure was a per-task timeout
            rather than a raised exception.
    """

    task: SweepTask
    error: str
    attempts: int
    timed_out: bool = False


@dataclass
class SweepFailureReport:
    """Structured account of a salvaged sweep (``salvage=True``).

    Falsy when every task completed, so ``if report:`` reads naturally.

    Attributes:
        failures: Tasks that stayed failed after every retry, in the
            submitted task order.
        completed: Tasks that produced a result (including checkpoint
            restores).
        attempted: Unique tasks the sweep was asked to run.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    completed: int = 0
    attempted: int = 0

    def __bool__(self) -> bool:
        return bool(self.failures)

    def summary(self) -> str:
        """Multi-line human-readable account for logs and CLI output."""
        if not self.failures:
            return f"sweep complete: all {self.attempted} task(s) succeeded"
        lines = [
            f"sweep salvaged: {len(self.failures)} of {self.attempted} "
            f"task(s) failed ({self.completed} completed):"
        ]
        for failure in self.failures:
            flavor = "timed out" if failure.timed_out else "failed"
            lines.append(
                f"  - {failure.task.describe()}: {flavor} after "
                f"{failure.attempts} attempt(s): {failure.error}"
            )
        return "\n".join(lines)


def compute_task(
    task: SweepTask, config: SolarCoreConfig
) -> DayResult | BatteryDayResult:
    """Run one task — the single execution path shared by the serial
    runner and every worker process, so both compute identical results.

    Every kind dispatches through the unified
    :class:`repro.core.engine.DayEngine` via the public ``run_day*``
    shims, so cached, serial, and parallel results all come from the
    same stepping loop."""
    loc: Location = location_by_code(task.location_code)
    if task.kind == "mppt":
        return run_day(
            task.mix_name, loc, task.month, task.policy,
            config=config, seed=task.seed, faults=task.faults,
        )
    if task.kind == "fixed":
        return run_day_fixed(
            task.mix_name, loc, task.month, task.budget_w,
            config=config, seed=task.seed, faults=task.faults,
        )
    return run_day_battery(
        task.mix_name, loc, task.month, task.derating,
        config=config, seed=task.seed, faults=task.faults,
    )


# ----------------------------------------------------------------------
# Persistent disk cache
# ----------------------------------------------------------------------
@dataclass
class CacheLease:
    """Ownership of one key's compute, held via an on-disk lease file.

    The file's *mtime is the heartbeat*: :meth:`refresh` touches it, and
    :meth:`DiskResultCache.try_lease` treats an mtime older than its
    staleness bound as a dead owner.  The token written inside the file
    is the identity check — every mutation verifies it first, so a lease
    taken over by another process is never refreshed or released by the
    original (now deposed) owner.
    """

    path: Path
    token: str

    def owned(self) -> bool:
        """Does the lease file still carry our token?"""
        try:
            doc = json.loads(self.path.read_bytes())
            return doc.get("token") == self.token
        except (OSError, ValueError):
            return False

    def refresh(self) -> bool:
        """Heartbeat: bump the lease mtime if we still own it."""
        if not self.owned():
            return False
        try:
            os.utime(self.path, None)
        except OSError:
            return False
        return True

    def release(self) -> None:
        """Drop the lease if we still own it (idempotent, never raises)."""
        if self.owned():
            try:
                self.path.unlink()
            except OSError:
                pass

    @contextmanager
    def heartbeats(self, interval_s: float):
        """Refresh the lease from a daemon thread while the body runs.

        The thread stops on exit or the first failed refresh (a deposed
        lease is unrecoverable; the compute still runs to completion —
        the worst case is duplicated work on a deterministic result).
        """
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval_s):
                if not self.refresh():
                    return

        thread = threading.Thread(
            target=beat, name="cache-lease-heartbeat", daemon=True)
        thread.start()
        try:
            yield self
        finally:
            stop.set()
            thread.join(timeout=5.0)


class DiskResultCache:
    """Content-addressed on-disk cache of day-simulation results.

    Entries live as ``<sha256>.pkl`` files under ``root``; the digest
    covers the cache format version, the code fingerprint, and the full
    task key, so a changed codebase or config addresses different files.
    Writes are atomic (same-directory temp file + ``os.replace``), safe
    under concurrent writers — the worst case is two processes computing
    the same entry, and last-write-wins of identical bytes.

    Args:
        root: Cache directory (created on first store).
        fingerprint: Code-fingerprint override (tests use this to model a
            code change; defaults to :func:`code_fingerprint`).
    """

    def __init__(self, root: str | Path, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self._ensure_format()

    def _ensure_format(self) -> None:
        """Purge entries written by an older cache format — loudly.

        A format bump means the result layout or the simulation engine
        changed in a way the per-entry addressing cannot express; serving
        (or silently orphaning) old entries is not acceptable, so every
        ``*.pkl`` under a stale or unmarked directory is deleted with a
        warning and the directory is stamped with the current format.
        """
        marker = self.root / _FORMAT_MARKER
        try:
            stored: int | None = int(marker.read_text().strip())
        except (FileNotFoundError, ValueError):
            stored = None
        if stored == CACHE_FORMAT_VERSION:
            return
        stale = sorted(self.root.glob("*.pkl"))
        if stale:
            log.warning(
                "disk cache %s was written by format %s (current: %s); "
                "deleting %d stale entry(ies) — they will be recomputed",
                self.root,
                "unknown" if stored is None else stored,
                CACHE_FORMAT_VERSION,
                len(stale),
            )
            for path in stale:
                try:
                    path.unlink()
                except OSError as exc:
                    log.warning(
                        "could not delete stale cache entry %s: %s", path, exc
                    )
        self.root.mkdir(parents=True, exist_ok=True)
        marker.write_text(f"{CACHE_FORMAT_VERSION}\n")

    def path_for(self, key: tuple) -> Path:
        """The entry file a key addresses (exists only after a store)."""
        digest = hashlib.sha256(
            f"{CACHE_FORMAT_VERSION}|{self.fingerprint}|{key!r}".encode()
        ).hexdigest()
        return self.root / f"{digest}.pkl"

    def load(self, key: tuple, *, count: bool = True) -> DayResult | BatteryDayResult | None:
        """The cached result for ``key``, or None.

        A corrupt, truncated, or mismatched entry is deleted with a
        warning and reported as a miss — silently returning garbage is
        the one failure mode a result cache must not have.

        ``count=False`` suppresses the hit/miss bookkeeping; the lease
        follower path polls ``load`` in a loop and would otherwise book
        one logical lookup as dozens of misses.
        """
        path = self.path_for(key)
        tel = telemetry_hub.current()
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            if count:
                self.misses += 1
                if tel.enabled:
                    tel.count("cache.disk_misses")
            return None
        try:
            entry = pickle.loads(raw)
            if entry["format"] != CACHE_FORMAT_VERSION:
                raise ValueError(f"cache format {entry['format']} != {CACHE_FORMAT_VERSION}")
            if entry["fingerprint"] != self.fingerprint:
                raise ValueError("code fingerprint mismatch")
            if entry["key"] != key:
                raise ValueError("stored key does not match its address")
            result = entry["result"]
        except Exception as exc:  # noqa: BLE001 — any decode failure recomputes
            log.warning(
                "corrupt disk-cache entry %s (%s: %s); deleting and recomputing",
                path, type(exc).__name__, exc,
            )
            try:
                path.unlink()
            except OSError as unlink_exc:
                log.warning(
                    "could not delete corrupt cache entry %s: %s", path, unlink_exc
                )
            if count:
                self.misses += 1
                if tel.enabled:
                    tel.count("cache.disk_misses")
            return None
        if count:
            self.hits += 1
            if tel.enabled:
                tel.count("cache.disk_hits")
        return result

    def store(self, key: tuple, result: DayResult | BatteryDayResult) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        payload = pickle.dumps(
            {
                "format": CACHE_FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "key": key,
                "result": result,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError as exc:
                log.warning(
                    "could not clean up cache temp file %s: %s", tmp, exc
                )
            raise
        tel = telemetry_hub.current()
        if tel.enabled:
            tel.count("cache.disk_stores")
        return path

    # -- cross-process compute leases ----------------------------------
    def lease_path_for(self, key: tuple) -> Path:
        """The lease file guarding ``key``'s compute (beside the entry)."""
        return self.path_for(key).with_suffix(".lease")

    def lease_age_s(self, key: tuple) -> float | None:
        """Seconds since the lease's last heartbeat, or None if no lease."""
        try:
            return max(0.0, time.time() - self.lease_path_for(key).stat().st_mtime)
        except OSError:
            return None

    def try_lease(self, key: tuple, *, stale_after_s: float = 30.0) -> CacheLease | None:
        """Try to become the one process computing ``key``.

        Returns a :class:`CacheLease` on success, None when another live
        process holds the lease (the caller should follow: poll
        :meth:`load` until the result lands or the lease goes stale).

        The protocol, in order of preference:

        1. ``O_EXCL``-create the lease file — atomic on POSIX, so exactly
           one of N racing processes wins a fresh election.
        2. If it exists but its mtime (the heartbeat) is older than
           ``stale_after_s``, take it over: atomically ``os.replace`` a
           claim file onto it, then *read back* the token.  Replace is
           last-writer-wins, so the read-back is what decides the
           election — every taker but one sees a foreign token and loses.

        Worst case under pathological timing (owner stalls longer than
        ``stale_after_s`` then resumes) is two processes computing the
        same deterministic entry and racing atomic stores of identical
        bytes — duplicated work, never corruption.
        """
        path = self.lease_path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{random.getrandbits(64):016x}"
        payload = json.dumps(
            {"pid": os.getpid(), "token": token, "created": time.time()}
        ).encode()
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                return None  # vanished: owner just released; caller re-polls
            if age <= stale_after_s:
                return None
            log.warning(
                "cache lease %s is stale (%.1fs > %.1fs); taking over",
                path.name, age, stale_after_s,
            )
            claim_fd, claim = tempfile.mkstemp(dir=self.root, suffix=".lease-claim")
            try:
                with os.fdopen(claim_fd, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(claim, path)
            except BaseException:
                try:
                    os.unlink(claim)
                except OSError:
                    pass
                raise
            lease = CacheLease(path=path, token=token)
            return lease if lease.owned() else None
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return CacheLease(path=path, token=token)

    def load_or_compute(
        self,
        key: tuple,
        compute,
        *,
        stale_after_s: float = 30.0,
        heartbeat_s: float | None = None,
        poll_s: float = 0.05,
    ):
        """Cross-process-deduplicated compute: ``(result, computed_by_us)``.

        Exactly one process per cache directory computes ``key`` at a
        time; everyone else waits on the lease and reads the stored
        result.  A leader that dies mid-compute (``kill -9``) stops
        heartbeating, its lease goes stale after ``stale_after_s``, and a
        follower is re-elected — no key can wedge forever.

        The caller is expected to have tried :meth:`load` already;
        internal polling loads use ``count=False`` so one logical lookup
        does not inflate the hit/miss counters.
        """
        if heartbeat_s is None:
            heartbeat_s = max(stale_after_s / 3.0, 0.01)
        while True:
            lease = self.try_lease(key, stale_after_s=stale_after_s)
            if lease is not None:
                try:
                    # A racer may have stored between our load miss and
                    # our election — serve its result instead of recomputing.
                    result = self.load(key, count=False)
                    if result is not None:
                        return result, False
                    with lease.heartbeats(heartbeat_s):
                        result = compute()
                        self.store(key, result)
                    return result, True
                finally:
                    lease.release()
            # Follower: wait for the leader's store, re-elect if it dies.
            while True:
                result = self.load(key, count=False)
                if result is not None:
                    return result, False
                age = self.lease_age_s(key)
                if age is None or age > stale_after_s:
                    break  # lease released or gone stale: re-elect
                time.sleep(poll_s)

    def stats(self) -> dict[str, float]:
        """``hits`` / ``misses`` counters for this cache handle."""
        return {"hits": self.hits, "misses": self.misses}


# ----------------------------------------------------------------------
# Process-pool fan-out
# ----------------------------------------------------------------------
def _chunk_by_cell(tasks: list[SweepTask]) -> list[list[SweepTask]]:
    """Group tasks by (location, month) cell, preserving order."""
    groups: dict[tuple[str, int], list[SweepTask]] = {}
    for task in tasks:
        groups.setdefault(task.cell, []).append(task)
    return list(groups.values())


def _worker_chunk(
    tasks: list[SweepTask],
    config: SolarCoreConfig,
    collect_telemetry: bool,
    collect_profile: bool = False,
) -> tuple[list, dict | None]:
    """Run one chunk inside a worker process.

    The worker always detaches from any inherited parent hub (sinks must
    not receive events from forked children); with ``collect_telemetry``
    each task runs under its own private hub and the snapshots of the
    tasks that *succeeded* are folded into one chunk snapshot that rides
    back with the results.  ``collect_profile`` additionally arms a
    private :class:`~repro.telemetry.profiling.PhaseProfiler` whose
    per-phase / per-day profile rides home inside the same snapshot.

    Per-task hubs (not one hub per chunk) are what make retry metrics
    exact: a task that fails after partial work ships *nothing* — its
    metrics would otherwise be merged once from the failed attempt and
    again from the retry that recomputes it.

    Each task yields an independent ``("ok", result)`` or
    ``("err", "TypeName: message")`` outcome: one bad cell no longer
    poisons its whole chunk — the parent decides whether to retry,
    salvage, or raise.
    """
    telemetry_hub.set_telemetry(None)
    collect = collect_telemetry or collect_profile
    chunk_hub = (
        Telemetry(profiler=PhaseProfiler() if collect_profile else None)
        if collect
        else None
    )
    try:
        outcomes = []
        for task in tasks:
            task_hub = None
            if collect:
                task_hub = Telemetry(
                    profiler=PhaseProfiler() if collect_profile else None
                )
                telemetry_hub.set_telemetry(task_hub)
            try:
                result = compute_task(task, config)
            except Exception as exc:
                outcomes.append(("err", f"{type(exc).__name__}: {exc}"))
            else:
                outcomes.append(("ok", result))
                if chunk_hub is not None:
                    chunk_hub.merge_snapshot(task_hub.snapshot())
            finally:
                if collect:
                    telemetry_hub.set_telemetry(None)
        snapshot = chunk_hub.snapshot() if chunk_hub is not None else None
        return outcomes, snapshot
    finally:
        telemetry_hub.set_telemetry(None)


def _split_completed(
    unique: list[SweepTask], checkpoint, tel
) -> tuple[dict[SweepTask, object], list[SweepTask]]:
    """Partition tasks into checkpoint-restored results and pending work."""
    results: dict[SweepTask, object] = {}
    pending: list[SweepTask] = []
    if checkpoint is None:
        return results, list(unique)
    for task in unique:
        prior = checkpoint.get(task)
        if prior is not None:
            results[task] = prior
        else:
            pending.append(task)
    if results:
        if tel.enabled:
            tel.count("sweep.checkpoint_skips", len(results))
        log.info(
            "checkpoint: %d of %d task(s) already complete; computing %d",
            len(results), len(unique), len(pending),
        )
    return results, pending


def _backoff_sleep(wave: int, retry_base_s: float, n_failed: int, tel) -> None:
    """Exponential backoff with deterministic jitter before retry ``wave``."""
    delay = retry_base_s * (2 ** (wave - 1))
    delay += random.Random(wave).uniform(0.0, retry_base_s)
    if tel.enabled:
        tel.count("sweep.retries", n_failed)
    log.warning(
        "sweep retry wave %d: %d task(s) failed, backing off %.2fs",
        wave, n_failed, delay,
    )
    if delay > 0:
        time.sleep(delay)


def _finish_sweep(
    results, snapshots, unique, pending, errors, attempts,
    checkpoint, salvage, tel, parallel,
):
    """Common tail of :func:`run_parallel` / :func:`run_serial`: flush the
    checkpoint, then salvage (structured report) or raise (first failure)."""
    if checkpoint is not None:
        checkpoint.flush()
    failures = [
        TaskFailure(
            task=task,
            error=errors[task][0],
            attempts=attempts[task],
            timed_out=errors[task][1],
        )
        for task in pending
    ]
    timeouts = sum(1 for failure in failures if failure.timed_out)
    if timeouts and tel.enabled:
        tel.count("sweep.timeouts", timeouts)
    if salvage:
        report = SweepFailureReport(
            failures=failures, completed=len(results), attempted=len(unique)
        )
        if failures:
            if tel.enabled:
                tel.count("sweep.salvaged_failures", len(failures))
            log.warning(report.summary())
        if parallel:
            return results, snapshots, report
        return results, report
    if failures:
        first = failures[0]
        where = "in worker" if parallel else "serially"
        raise SweepError(
            f"sweep task failed {where}: {first.task.describe()}: {first.error}"
        )
    if parallel:
        return results, snapshots
    return results


def _run_wave(chunks, config, collect_telemetry, collect_profile, workers, task_timeout):
    """Run one wave of chunks on a fresh pool; never raises per-task.

    A fresh :class:`ProcessPoolExecutor` per wave is deliberate: a worker
    that dies (segfault, ``os._exit``) breaks its pool permanently, so
    retry waves must not inherit it.  With ``task_timeout`` each chunk
    gets a ``task_timeout * len(chunk)`` deadline; an expired chunk is
    marked timed out and its worker abandoned (the pool is shut down
    without waiting — a hung simulation cannot hang the sweep).
    """
    outcomes: list[tuple[SweepTask, tuple[str, object, bool]]] = []
    snapshots: list[dict] = []
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned = False
    try:
        futures = {
            pool.submit(
                _worker_chunk, chunk, config, collect_telemetry, collect_profile
            ): chunk
            for chunk in chunks
        }
        deadlines: dict = {}
        if task_timeout is not None:
            start = time.monotonic()
            deadlines = {
                future: start + task_timeout * len(chunk)
                for future, chunk in futures.items()
            }
        not_done = set(futures)
        while not_done:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0,
                    min(deadlines[f] for f in not_done) - time.monotonic(),
                )
            done, not_done = wait(
                not_done, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                chunk = futures[future]
                try:
                    chunk_outcomes, snapshot = future.result()
                except Exception as exc:  # pool-level crash (BrokenProcessPool)
                    message = f"{type(exc).__name__}: {exc}"
                    for task in chunk:
                        outcomes.append((task, ("err", message, False)))
                    continue
                for task, (status, payload) in zip(chunk, chunk_outcomes):
                    outcomes.append((task, (status, payload, False)))
                if snapshot is not None:
                    snapshots.append(snapshot)
            if not done and deadlines:
                now = time.monotonic()
                expired = {f for f in not_done if now >= deadlines[f]}
                for future in expired:
                    chunk = futures[future]
                    future.cancel()
                    message = (
                        f"timed out after {task_timeout * len(chunk):.1f}s "
                        f"({len(chunk)} task(s) x {task_timeout:.1f}s)"
                    )
                    for task in chunk:
                        outcomes.append((task, ("err", message, True)))
                if expired:
                    abandoned = True
                not_done -= expired
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
    return outcomes, snapshots


def run_parallel(
    tasks: list[SweepTask],
    config: SolarCoreConfig,
    jobs: int,
    collect_telemetry: bool = False,
    collect_profile: bool = False,
    *,
    retries: int = 0,
    retry_base_s: float = 0.1,
    task_timeout: float | None = None,
    salvage: bool = False,
    checkpoint=None,
):
    """Fan ``tasks`` out over a process pool, chunked by (location, month).

    Resilience semantics: the first wave runs cell chunks; tasks that
    fail (raise, crash their worker, or exceed the timeout) are retried
    in up to ``retries`` further waves as single-task chunks on a fresh
    pool, after exponential backoff.  Tasks still failed after the last
    wave either abort the sweep (``salvage=False``, the historical
    behavior) or are reported in a :class:`SweepFailureReport` alongside
    every completed result (``salvage=True``).

    Args:
        tasks: Grid cells to simulate (duplicates are computed once).
        config: Simulation configuration shared by every task.
        jobs: Worker processes (capped at the number of chunks).
        collect_telemetry: Ship per-worker counter/span snapshots back.
        collect_profile: Arm a per-worker hot-path profiler; its phase /
            day profile rides back inside the telemetry snapshot (the
            parent merges it via ``Telemetry.merge_snapshot``).
        retries: Retry waves for failed tasks (0 = at most one attempt).
        retry_base_s: Backoff base: wave ``n`` sleeps
            ``retry_base_s * 2**(n-1)`` plus deterministic jitter.
        task_timeout: Per-task wall-clock budget [s]; a chunk's deadline
            is ``task_timeout * len(chunk)``.  None = no deadline.
        salvage: Return partial results plus a failure report instead of
            raising on the first permanently failed task.
        checkpoint: Optional
            :class:`~repro.harness.checkpoint.SweepCheckpoint`; loaded
            entries are skipped, new results are recorded as they land.

    Returns:
        ``(results, snapshots)`` — or ``(results, snapshots, report)``
        when ``salvage`` is set.

    Raises:
        SweepError: A task failed every attempt (only without salvage);
            the message names its coordinates.
    """
    tel = telemetry_hub.current()
    unique = list(dict.fromkeys(tasks))
    results, pending = _split_completed(unique, checkpoint, tel)
    snapshots: list[dict] = []
    attempts = dict.fromkeys(pending, 0)
    errors: dict[SweepTask, tuple[str, bool]] = {}
    for wave in range(retries + 1):
        if not pending:
            break
        if wave == 0:
            chunks = _chunk_by_cell(pending)
            log.info(
                "parallel sweep: %d task(s) in %d cell chunk(s) over %d worker(s)",
                len(pending), len(chunks), max(1, min(jobs, len(chunks))),
            )
        else:
            _backoff_sleep(wave, retry_base_s, len(pending), tel)
            # Retry singly: a failed cell must not re-drag healthy
            # neighbors through another attempt.
            chunks = [[task] for task in pending]
        workers = max(1, min(jobs, len(chunks)))
        wave_outcomes, wave_snapshots = _run_wave(
            chunks, config, collect_telemetry, collect_profile, workers,
            task_timeout,
        )
        snapshots.extend(wave_snapshots)
        failed_now: list[SweepTask] = []
        for task, (status, payload, timed_out) in wave_outcomes:
            attempts[task] += 1
            if status == "ok":
                results[task] = payload
                errors.pop(task, None)
                if checkpoint is not None:
                    checkpoint.record(task, payload)
            else:
                errors[task] = (payload, timed_out)
                failed_now.append(task)
        pending = failed_now
    return _finish_sweep(
        results, snapshots, unique, pending, errors, attempts,
        checkpoint, salvage, tel, parallel=True,
    )


def run_serial(
    tasks: list[SweepTask],
    config: SolarCoreConfig,
    *,
    retries: int = 0,
    retry_base_s: float = 0.1,
    salvage: bool = False,
    checkpoint=None,
):
    """In-process sibling of :func:`run_parallel` (the ``jobs=1`` path).

    Same retry / salvage / checkpoint semantics, same
    :func:`compute_task` execution path, no worker pool.  Per-task
    timeouts need process isolation and therefore only exist in the
    parallel engine.

    Returns:
        ``results`` — or ``(results, report)`` when ``salvage`` is set.

    Raises:
        SweepError: A task failed every attempt (only without salvage).
    """
    tel = telemetry_hub.current()
    unique = list(dict.fromkeys(tasks))
    results, pending = _split_completed(unique, checkpoint, tel)
    attempts = dict.fromkeys(pending, 0)
    errors: dict[SweepTask, tuple[str, bool]] = {}
    for wave in range(retries + 1):
        if not pending:
            break
        if wave:
            _backoff_sleep(wave, retry_base_s, len(pending), tel)
        failed_now: list[SweepTask] = []
        for task in pending:
            attempts[task] += 1
            try:
                result = compute_task(task, config)
            except Exception as exc:
                errors[task] = (f"{type(exc).__name__}: {exc}", False)
                failed_now.append(task)
                continue
            results[task] = result
            errors.pop(task, None)
            if checkpoint is not None:
                checkpoint.record(task, result)
        pending = failed_now
    return _finish_sweep(
        results, [], unique, pending, errors, attempts,
        checkpoint, salvage, tel, parallel=False,
    )


# ----------------------------------------------------------------------
# Grid construction
# ----------------------------------------------------------------------
def grid_tasks(
    mixes,
    locations,
    months,
    policies=("MPPT&Opt",),
    budgets_w=(),
    deratings=(),
    seeds=(None,),
    faults=None,
) -> list[SweepTask]:
    """The task list for a (location x month x mix x policy) grid.

    ``budgets_w`` adds a Fixed-Power task per budget and ``deratings`` a
    battery task per factor, for the same (location, month, mix) cells;
    ``seeds`` multiplies the grid by weather realization.

    Args:
        mixes: Mix names.
        locations: Stations, as codes or :class:`Location` objects.
        months: Calendar months.
        policies: MPPT policies swept.
        budgets_w: Fixed-Power thresholds swept [W].
        deratings: Battery de-rating factors swept.
        seeds: Weather seeds (None = the standard seeded trace).
        faults: Fault-schedule spec string applied to every cell (None =
            fault-free grid).

    Returns:
        One :class:`SweepTask` per grid cell, ordered by (location, month)
        so chunking keeps cells together.
    """
    codes = [
        loc.code if isinstance(loc, Location) else location_by_code(loc).code
        for loc in locations
    ]
    tasks = []
    for code in codes:
        for month in months:
            for seed in seeds:
                for mix_name in mixes:
                    for policy in policies:
                        tasks.append(SweepTask(
                            "mppt", mix_name, code, month,
                            policy=policy, seed=seed, faults=faults,
                        ))
                    for budget in budgets_w:
                        tasks.append(SweepTask(
                            "fixed", mix_name, code, month,
                            budget_w=budget, seed=seed, faults=faults,
                        ))
                    for derating in deratings:
                        tasks.append(SweepTask(
                            "battery", mix_name, code, month,
                            derating=derating, seed=seed, faults=faults,
                        ))
    return tasks
