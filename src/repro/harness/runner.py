"""Cached execution of day simulations for the experiment harness.

Most figures slice the same underlying grid of day simulations
(location x month x mix x policy).  ``SimulationRunner`` memoizes each day
run so the whole benchmark suite pays for every distinct simulation exactly
once per process.
"""

from __future__ import annotations

from dataclasses import fields

from repro.core.config import SolarCoreConfig
from repro.core.simulation import (
    BatteryDayResult,
    DayResult,
    run_day,
    run_day_battery,
    run_day_fixed,
)
from repro.environment.locations import Location, location_by_code

__all__ = ["SimulationRunner", "default_runner"]


def _config_key(config: SolarCoreConfig) -> tuple:
    return tuple(getattr(config, f.name) for f in fields(config))


class SimulationRunner:
    """Runs and memoizes day simulations.

    Args:
        config: Simulation configuration shared by every run.
    """

    def __init__(self, config: SolarCoreConfig | None = None) -> None:
        self.config = config or SolarCoreConfig()
        self._days: dict[tuple, DayResult] = {}
        self._battery: dict[tuple, BatteryDayResult] = {}

    def _resolve(self, location: Location | str) -> Location:
        if isinstance(location, str):
            return location_by_code(location)
        return location

    def day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        policy: str = "MPPT&Opt",
    ) -> DayResult:
        """A (cached) SolarCore day simulation."""
        loc = self._resolve(location)
        key = ("mppt", mix_name, loc.code, month, policy, _config_key(self.config))
        if key not in self._days:
            self._days[key] = run_day(mix_name, loc, month, policy, config=self.config)
        return self._days[key]

    def fixed_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        budget_w: float,
    ) -> DayResult:
        """A (cached) Fixed-Power day simulation."""
        loc = self._resolve(location)
        key = ("fixed", mix_name, loc.code, month, budget_w, _config_key(self.config))
        if key not in self._days:
            self._days[key] = run_day_fixed(
                mix_name, loc, month, budget_w, config=self.config
            )
        return self._days[key]

    def battery_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        derating: float,
    ) -> BatteryDayResult:
        """A (cached) battery-baseline day simulation."""
        loc = self._resolve(location)
        key = ("battery", mix_name, loc.code, month, derating, _config_key(self.config))
        if key not in self._battery:
            self._battery[key] = run_day_battery(
                mix_name, loc, month, derating, config=self.config
            )
        return self._battery[key]

    @property
    def cached_runs(self) -> int:
        """Number of distinct simulations held in the cache."""
        return len(self._days) + len(self._battery)


#: Process-wide runner shared by the benchmark suite.
default_runner = SimulationRunner()
