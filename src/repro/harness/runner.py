"""Cached execution of day simulations for the experiment harness.

Most figures slice the same underlying grid of day simulations
(location x month x mix x policy).  ``SimulationRunner`` memoizes each day
run so the whole benchmark suite pays for every distinct simulation exactly
once per process.

Because memoized results are handed to *every* caller, their numpy arrays
are frozen (``writeable = False``) before caching: a benchmark that
normalizes a series in place would otherwise silently corrupt the result
every later caller sees.
"""

from __future__ import annotations

import logging
from dataclasses import fields

from repro.core.config import SolarCoreConfig
from repro.core.simulation import (
    BatteryDayResult,
    DayResult,
    run_day,
    run_day_battery,
    run_day_fixed,
)
from repro.environment.locations import Location, location_by_code
from repro.telemetry import hub as telemetry_hub

__all__ = ["SimulationRunner", "default_runner"]

log = logging.getLogger(__name__)


def _config_key(config: SolarCoreConfig) -> tuple:
    """A hashable cache key over every config field.

    Fails loudly — naming the offending field — if a future
    :class:`SolarCoreConfig` gains an unhashable field, instead of raising
    a bare ``unhashable type`` deep inside a dict lookup.
    """
    key = []
    for f in fields(config):
        value = getattr(config, f.name)
        try:
            hash(value)
        except TypeError as exc:
            raise TypeError(
                f"SolarCoreConfig.{f.name} is not hashable "
                f"({type(value).__name__}: {value!r}); "
                "make the field hashable or exclude it from the cache key"
            ) from exc
        key.append(value)
    return tuple(key)


def _freeze(day: DayResult) -> DayResult:
    """Mark a cached result's arrays read-only (callers share them)."""
    for name in ("minutes", "mpp_w", "consumed_w", "throughput_gips", "on_solar"):
        getattr(day, name).flags.writeable = False
    return day


class SimulationRunner:
    """Runs and memoizes day simulations.

    Args:
        config: Simulation configuration shared by every run.
    """

    def __init__(self, config: SolarCoreConfig | None = None) -> None:
        self.config = config or SolarCoreConfig()
        self._days: dict[tuple, DayResult] = {}
        self._battery: dict[tuple, BatteryDayResult] = {}
        self._hits = 0
        self._misses = 0

    def _resolve(self, location: Location | str) -> Location:
        if isinstance(location, str):
            return location_by_code(location)
        return location

    def _note(self, hit: bool) -> None:
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        tel = telemetry_hub.current()
        if tel.enabled:
            tel.count("runner.cache_hits" if hit else "runner.cache_misses")

    def day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        policy: str = "MPPT&Opt",
    ) -> DayResult:
        """A (cached) SolarCore day simulation."""
        loc = self._resolve(location)
        key = ("mppt", mix_name, loc.code, month, policy, _config_key(self.config))
        cached = self._days.get(key)
        self._note(cached is not None)
        if cached is None:
            log.debug("cache miss: day %s", key[:5])
            cached = self._days[key] = _freeze(
                run_day(mix_name, loc, month, policy, config=self.config)
            )
        return cached

    def fixed_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        budget_w: float,
    ) -> DayResult:
        """A (cached) Fixed-Power day simulation."""
        loc = self._resolve(location)
        key = ("fixed", mix_name, loc.code, month, budget_w, _config_key(self.config))
        cached = self._days.get(key)
        self._note(cached is not None)
        if cached is None:
            log.debug("cache miss: fixed day %s", key[:5])
            cached = self._days[key] = _freeze(
                run_day_fixed(mix_name, loc, month, budget_w, config=self.config)
            )
        return cached

    def battery_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        derating: float,
    ) -> BatteryDayResult:
        """A (cached) battery-baseline day simulation."""
        loc = self._resolve(location)
        key = ("battery", mix_name, loc.code, month, derating, _config_key(self.config))
        cached = self._battery.get(key)
        self._note(cached is not None)
        if cached is None:
            log.debug("cache miss: battery day %s", key[:5])
            cached = self._battery[key] = run_day_battery(
                mix_name, loc, month, derating, config=self.config
            )
        return cached

    @property
    def cached_runs(self) -> int:
        """Number of distinct simulations held in the cache."""
        return len(self._days) + len(self._battery)

    def stats(self) -> dict[str, float]:
        """Cache effectiveness counters.

        Returns:
            ``hits``, ``misses``, ``cached_runs``, and ``hit_rate`` (0.0
            when the runner has not been asked for anything yet).
        """
        lookups = self._hits + self._misses
        return {
            "hits": self._hits,
            "misses": self._misses,
            "cached_runs": self.cached_runs,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }


#: Process-wide runner shared by the benchmark suite.
default_runner = SimulationRunner()
