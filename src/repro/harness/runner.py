"""Cached execution of day simulations for the experiment harness.

Most figures slice the same underlying grid of day simulations
(location x month x mix x policy).  ``SimulationRunner`` memoizes each day
run so the whole benchmark suite pays for every distinct simulation exactly
once per process — and, when constructed with ``cache_dir=``, exactly once
per *codebase*: results persist to a content-addressed disk cache
(:class:`~repro.harness.parallel.DiskResultCache`) keyed by the full
simulation identity plus a source fingerprint, so every later process
reads them back instead of recomputing.  With ``jobs=N`` the runner fans
grid prefetches out across worker processes
(:func:`~repro.harness.parallel.run_parallel`).

Because memoized results are handed to *every* caller, their numpy arrays
are frozen (``writeable = False``) before caching: a benchmark that
normalizes a series in place would otherwise silently corrupt the result
every later caller sees.
"""

from __future__ import annotations

import logging
from dataclasses import fields

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.simulation import BatteryDayResult, DayResult
from repro.environment.locations import Location, location_by_code
from repro.harness.parallel import (
    DiskResultCache,
    SweepFailureReport,
    SweepTask,
    compute_task,
    config_key as _config_key,
    run_parallel,
    run_serial,
)
from repro.telemetry import hub as telemetry_hub

__all__ = ["SimulationRunner", "default_runner"]

log = logging.getLogger(__name__)


def _freeze(result):
    """Mark every numpy array of a cached result read-only (callers share
    them).  Covers :class:`DayResult` (policy and fixed-budget days) and
    any array-carrying field a future :class:`BatteryDayResult` grows;
    battery results are additionally frozen dataclasses, so their scalar
    fields already reject mutation.
    """
    for f in fields(result):
        value = getattr(result, f.name)
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
    return result


class SimulationRunner:
    """Runs and memoizes day simulations.

    Args:
        config: Simulation configuration shared by every run.
        jobs: Worker processes used by :meth:`prefetch` (1 = serial).
        cache_dir: Directory for the persistent result cache, or None to
            keep results in memory only.
        retries: Retry waves for failed prefetch tasks (see
            :func:`~repro.harness.parallel.run_parallel`).
        task_timeout: Per-task wall-clock budget [s] for parallel
            prefetches (None = unbounded; ignored when ``jobs == 1``).
        salvage: Prefetches return every completed cell plus a
            :class:`~repro.harness.parallel.SweepFailureReport` (exposed
            as :attr:`last_failure_report`) instead of aborting on the
            first permanently failed task.
        checkpoint: Optional
            :class:`~repro.harness.checkpoint.SweepCheckpoint` recording
            prefetch progress (call its ``load()`` first to resume).
        lease_stale_s: When set (and a disk cache is attached), single-task
            computes go through the cross-process lease protocol
            (:meth:`~repro.harness.parallel.DiskResultCache.load_or_compute`):
            N processes sharing one cache directory produce exactly one
            compute per key, and a leader dead longer than this many
            seconds is replaced.  None (default) keeps the lease-free
            single-process behavior.
    """

    def __init__(
        self,
        config: SolarCoreConfig | None = None,
        *,
        jobs: int = 1,
        cache_dir=None,
        retries: int = 0,
        task_timeout: float | None = None,
        salvage: bool = False,
        checkpoint=None,
        lease_stale_s: float | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if lease_stale_s is not None and lease_stale_s <= 0:
            raise ValueError(f"lease_stale_s must be > 0, got {lease_stale_s}")
        self.config = config or SolarCoreConfig()
        self.jobs = jobs
        self.disk = DiskResultCache(cache_dir) if cache_dir is not None else None
        self.lease_stale_s = lease_stale_s
        #: Computes this runner ceded to another process's lease.
        self.lease_follows = 0
        self.retries = retries
        self.task_timeout = task_timeout
        self.salvage = salvage
        self.checkpoint = checkpoint
        #: The failure report of the most recent salvaged prefetch (falsy
        #: when it completed fully; None before any salvaged prefetch).
        self.last_failure_report: SweepFailureReport | None = None
        self._cfg_key = _config_key(self.config)
        self._days: dict[tuple, DayResult] = {}
        self._battery: dict[tuple, BatteryDayResult] = {}
        self._hits = 0
        self._misses = 0

    def _resolve(self, location: Location | str) -> Location:
        if isinstance(location, str):
            return location_by_code(location)
        return location

    def _note(self, hit: bool) -> None:
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        tel = telemetry_hub.current()
        if tel.enabled:
            tel.count("runner.cache_hits" if hit else "runner.cache_misses")

    def _store_of(self, task: SweepTask) -> dict:
        return self._battery if task.kind == "battery" else self._days

    def _from_disk(self, task: SweepTask, key: tuple):
        """Try the disk cache; freeze and memoize on a hit."""
        if self.disk is None:
            return None
        result = self.disk.load(key)
        tel = telemetry_hub.current()
        if tel.enabled:
            tel.count("runner.disk_hits" if result is not None else "runner.disk_misses")
        if result is None:
            return None
        result = _freeze(result)
        self._store_of(task)[key] = result
        return result

    def _get(self, task: SweepTask):
        """Memory cache -> disk cache -> compute, memoizing at each tier."""
        key = task.cache_key(self._cfg_key)
        cached = self._store_of(task).get(key)
        self._note(cached is not None)
        if cached is not None:
            return cached
        result = self._from_disk(task, key)
        if result is not None:
            return result
        log.debug("cache miss: %s", task.describe())
        tel = telemetry_hub.current()
        if self.disk is not None and self.lease_stale_s is not None:
            # Cross-process dedup: exactly one process on this cache dir
            # computes the key; everyone else waits and reads the store.
            result, computed = self.disk.load_or_compute(
                key,
                lambda: compute_task(task, self.config),
                stale_after_s=self.lease_stale_s,
            )
            result = _freeze(result)
            if computed:
                if tel.enabled:
                    tel.count("runner.computes")
            else:
                self.lease_follows += 1
                if tel.enabled:
                    tel.count("runner.lease_follows")
            self._store_of(task)[key] = result
            return result
        if tel.enabled:
            tel.count("runner.computes")
        result = _freeze(compute_task(task, self.config))
        self._store_of(task)[key] = result
        if self.disk is not None:
            self.disk.store(key, result)
        return result

    # ------------------------------------------------------------------
    # Cache identity and tier access (the service's coalescing surface)
    # ------------------------------------------------------------------
    def cache_key(self, task: SweepTask) -> tuple:
        """The complete cache identity of ``task`` under this runner's config.

        This is the exact tuple the memory memo, the disk cache, and the
        worker protocol key on — and therefore the unit of request
        coalescing in :mod:`repro.service`: two tasks with equal keys are
        the same simulation, byte for byte.
        """
        return task.cache_key(self._cfg_key)

    def peek(self, task: SweepTask):
        """The cached result for ``task`` (memory, then disk) — or None.

        Never computes.  The service uses this for cache-hit-first
        serving: a hit is answered immediately, only a miss enters the
        coalescer.  Hit/miss counters are booked like :meth:`day` lookups.
        """
        key = task.cache_key(self._cfg_key)
        cached = self._store_of(task).get(key)
        self._note(cached is not None)
        if cached is not None:
            return cached
        return self._from_disk(task, key)

    def run_task(self, task: SweepTask):
        """Compute (or fetch) one task through the tiered cache.

        Public equivalent of the internal :meth:`_get` used by the
        :meth:`day` / :meth:`fixed_day` / :meth:`battery_day` wrappers;
        the service's executor bridge calls this from worker threads.
        Concurrent calls for *distinct* keys are safe; serializing
        same-key calls is the caller's job (the service's coalescer
        guarantees it, which keeps the ``runner.computes`` telemetry
        counter an exact compute count).
        """
        return self._get(task)

    # ------------------------------------------------------------------
    # Single-simulation entry points
    # ------------------------------------------------------------------
    def day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        policy: str = "MPPT&Opt",
        seed: int | None = None,
        faults: str | None = None,
    ) -> DayResult:
        """A (cached) SolarCore day simulation."""
        loc = self._resolve(location)
        return self._get(SweepTask(
            "mppt", mix_name, loc.code, month, policy=policy, seed=seed,
            faults=faults,
        ))

    def fixed_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        budget_w: float,
        seed: int | None = None,
        faults: str | None = None,
    ) -> DayResult:
        """A (cached) Fixed-Power day simulation."""
        loc = self._resolve(location)
        return self._get(SweepTask(
            "fixed", mix_name, loc.code, month, budget_w=budget_w, seed=seed,
            faults=faults,
        ))

    def battery_day(
        self,
        mix_name: str,
        location: Location | str,
        month: int,
        derating: float,
        seed: int | None = None,
        faults: str | None = None,
    ) -> BatteryDayResult:
        """A (cached) battery-baseline day simulation."""
        loc = self._resolve(location)
        return self._get(SweepTask(
            "battery", mix_name, loc.code, month, derating=derating, seed=seed,
            faults=faults,
        ))

    # ------------------------------------------------------------------
    # Grid prefetch (the parallel path)
    # ------------------------------------------------------------------
    def prefetch(self, tasks) -> dict[SweepTask, DayResult | BatteryDayResult]:
        """Materialize every task, fanning misses out over ``jobs`` workers.

        Memory- and disk-cached tasks are never re-run; the remainder is
        chunked by (location, month) and computed by
        :func:`~repro.harness.parallel.run_parallel` when ``jobs > 1``
        (:func:`~repro.harness.parallel.run_serial` otherwise), honoring
        the runner's ``retries`` / ``task_timeout`` / ``salvage`` /
        ``checkpoint`` settings.  Per-worker telemetry snapshots are
        merged into the parent hub, so the post-run summary covers
        worker-side simulation counters and span totals.

        Returns:
            Every requested task's result (frozen, shared with later
            callers of :meth:`day` / :meth:`fixed_day` /
            :meth:`battery_day`).  In salvage mode, permanently failed
            tasks are simply absent and :attr:`last_failure_report`
            holds the structured account.
        """
        tasks = list(dict.fromkeys(tasks))
        missing = []
        for task in tasks:
            key = task.cache_key(self._cfg_key)
            if key in self._store_of(task):
                continue
            if self._from_disk(task, key) is not None:
                continue
            missing.append(task)
        report: SweepFailureReport | None = None
        if missing:
            tel = telemetry_hub.current()
            if tel.enabled:
                tel.count("runner.computes", len(missing))
            if self.jobs > 1:
                outcome = run_parallel(
                    missing, self.config, self.jobs,
                    collect_telemetry=tel.enabled,
                    collect_profile=tel.profile.enabled,
                    retries=self.retries,
                    task_timeout=self.task_timeout,
                    salvage=self.salvage,
                    checkpoint=self.checkpoint,
                )
                if self.salvage:
                    results, snapshots, report = outcome
                else:
                    results, snapshots = outcome
                for snapshot in snapshots:
                    tel.merge_snapshot(snapshot)
            else:
                outcome = run_serial(
                    missing, self.config,
                    retries=self.retries,
                    salvage=self.salvage,
                    checkpoint=self.checkpoint,
                )
                if self.salvage:
                    results, report = outcome
                else:
                    results = outcome
            for task, result in results.items():
                key = task.cache_key(self._cfg_key)
                result = _freeze(result)
                self._store_of(task)[key] = result
                if self.disk is not None:
                    self.disk.store(key, result)
                self._note(False)
        if self.salvage:
            self.last_failure_report = report or SweepFailureReport(
                attempted=len(tasks), completed=len(tasks)
            )
            completed = [
                task for task in tasks
                if task.cache_key(self._cfg_key) in self._store_of(task)
            ]
            return {task: self._get(task) for task in completed}
        return {task: self._get(task) for task in tasks}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cached_runs(self) -> int:
        """Number of distinct simulations held in the cache."""
        return len(self._days) + len(self._battery)

    def stats(self) -> dict[str, float]:
        """Cache effectiveness counters.

        Returns:
            ``hits``, ``misses``, ``cached_runs``, and ``hit_rate`` (0.0
            when the runner has not been asked for anything yet), plus
            ``disk_hits`` / ``disk_misses`` when a disk cache is attached.
        """
        lookups = self._hits + self._misses
        stats = {
            "hits": self._hits,
            "misses": self._misses,
            "cached_runs": self.cached_runs,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }
        if self.disk is not None:
            stats["disk_hits"] = self.disk.hits
            stats["disk_misses"] = self.disk.misses
        if self.lease_stale_s is not None:
            stats["lease_follows"] = self.lease_follows
        return stats


#: Process-wide runner shared by the benchmark suite.
default_runner = SimulationRunner()
