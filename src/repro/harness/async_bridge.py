"""Async executor bridge from the event loop onto ``SimulationRunner``.

The service's event loop must never run a day simulation inline — a
single 1-minute-cadence day would stall every connected WebSocket for
seconds.  :class:`AsyncRunner` owns a small thread pool and hops each
compute onto it, so the loop only ever awaits.

Threads, not processes, deliberately: results come back as live objects
(no pickling), the runner's memory memo is shared by every compute, and
telemetry events emitted inside the simulation reach the process-wide
hub — which is how the service streams them live.  The simulations
themselves are numpy/scipy-heavy, so worker threads spend most of their
time outside the GIL; for genuinely CPU-parallel sweeps the wrapped
runner can still fan out to worker *processes* via its own ``jobs=``
(:meth:`SimulationRunner.prefetch`), giving threads-for-latency,
processes-for-throughput.

Same-key serialization is NOT this module's job: the service's
:class:`~repro.service.coalesce.Coalescer` guarantees at most one
in-flight compute per cache key, which keeps the runner's tier counters
exact.  Distinct keys may compute concurrently.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.harness.parallel import SweepTask
from repro.harness.runner import SimulationRunner

__all__ = ["AsyncRunner"]


class AsyncRunner:
    """Awaitable facade over a (shared) :class:`SimulationRunner`.

    Args:
        runner: The runner doing the actual caching and computing.
        max_workers: Compute threads (default 4 — enough to overlap
            several jobs without oversubscribing a small host).
    """

    def __init__(self, runner: SimulationRunner | None = None,
                 *, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.runner = runner or SimulationRunner()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="solarcore-compute"
        )

    # -- passthrough cache surface (loop-safe, no compute) ---------------
    def cache_key(self, task: SweepTask) -> tuple:
        """The task's full cache identity (the coalescing key)."""
        return self.runner.cache_key(task)

    def peek_memory(self, task: SweepTask):
        """Memory-tier-only lookup; returns the result or None.

        Safe to call inline on the event loop (a dict lookup).  The disk
        tier is *not* consulted here — it does file IO, so the full
        :meth:`SimulationRunner.peek` belongs on a worker thread via
        :meth:`peek`.
        """
        key = self.runner.cache_key(task)
        return self.runner._store_of(task).get(key)

    # -- awaitable tiers -------------------------------------------------
    async def peek(self, task: SweepTask):
        """Memory -> disk lookup on a worker thread; result or None."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self.runner.peek, task)

    async def run_task(self, task: SweepTask):
        """Compute (or fetch) one task on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self.runner.run_task, task)

    # -- lifecycle -------------------------------------------------------
    async def aclose(self, *, cancel_pending: bool = False) -> None:
        """Stop accepting work and wait for in-flight computes to finish.

        ``cancel_pending=True`` additionally cancels queued-but-unstarted
        executor futures (``shutdown(cancel_futures=True)``) — the drain
        path uses this so a backlog of never-started computes does not
        hold the process open past its drain deadline.  Threads already
        inside a simulation still run to completion either way; a thread
        cannot be safely preempted.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None,
            lambda: self._pool.shutdown(wait=True, cancel_futures=cancel_pending),
        )

    def stats(self) -> dict[str, float]:
        """The wrapped runner's cache counters."""
        return self.runner.stats()
