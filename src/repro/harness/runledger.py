"""Run provenance ledger: one atomic JSON manifest per harness run.

"Which code, which config, which seeds produced these numbers — and how
much of the work came from cache?"  Every ``simulate``/``sweep``/
``campaign`` invocation can answer that forever by writing a manifest
into a runs directory:

* **identity** — the config cache key, the source-tree fingerprint
  (:func:`~repro.harness.parallel.code_fingerprint`), seeds, and the
  canonical fault-schedule spec;
* **execution** — cache tier counts (memory / disk / compute), retry-wave
  and timeout stats, wall-clock, and the per-phase timing summary when
  the hot-path profiler was armed;
* **environment** — host platform, Python version, and CPU count (the
  committed 0.95x parallel-speedup record taught us runs without the
  core count attached are uninterpretable).

Manifests are written atomically (same-directory temp file +
``os.replace``) so a killed run never leaves a half-written JSON, and
read back by ``solarcore runs list|show|diff``.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.telemetry import hub as telemetry_hub

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunLedger",
    "build_manifest",
    "render_manifest",
    "render_run_list",
    "diff_manifests",
]

#: Bump when the manifest layout changes incompatibly; readers refuse
#: (with a clear message) rather than misinterpret a future layout.
MANIFEST_SCHEMA_VERSION = 1

#: Default runs directory, relative to the working directory.
DEFAULT_RUNS_DIR = "runs"

#: Telemetry counters summarized into the manifest's ``cache`` section.
_CACHE_COUNTERS = (
    "runner.cache_hits",
    "runner.cache_misses",
    "runner.disk_hits",
    "runner.disk_misses",
    "runner.computes",
    "cache.disk_hits",
    "cache.disk_misses",
    "cache.disk_stores",
)

#: Telemetry counters summarized into the manifest's ``sweep`` section.
_SWEEP_COUNTERS = (
    "sweep.retries",
    "sweep.timeouts",
    "sweep.salvaged_failures",
    "sweep.checkpoint_skips",
)


def host_info() -> dict:
    """The execution environment facts every manifest carries."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    command: str,
    argv: list[str] | None = None,
    *,
    config=None,
    seeds=None,
    faults: str | None = None,
    jobs: int | None = None,
    duration_s: float | None = None,
    telemetry=None,
    extra: dict | None = None,
) -> dict:
    """Assemble a schema-versioned manifest for one finished run.

    Args:
        command: The CLI subcommand (or harness entry point) that ran.
        argv: The invocation's arguments, verbatim.
        config: The run's :class:`~repro.core.config.SolarCoreConfig`
            (captured as its cache key, so two manifests compare equal
            exactly when the sweeps would share cache entries).
        seeds: Weather seeds used (None entries mean the standard trace).
        faults: Canonical fault-schedule spec, or None for fault-free.
        jobs: Worker processes requested.
        duration_s: End-to-end wall-clock of the run [s].
        telemetry: Hub whose counters/profile summarize the execution
            (the process-wide hub when omitted; the null hub contributes
            empty sections).
        extra: Free-form scenario fields merged in under ``extra``.
    """
    # Imported here: parallel imports telemetry, and keeping runledger
    # import-light lets the CLI load it before the simulation stack.
    from repro.harness.parallel import code_fingerprint, config_key
    from repro.multicore.spec import ChipSpec

    chip = getattr(config, "chip_spec", None)
    chip_identity = (
        ChipSpec.parse(chip).identity() if chip is not None else None
    )

    tel = telemetry if telemetry is not None else telemetry_hub.current()
    snap = tel.snapshot() if tel.enabled else {}
    counters = snap.get("counters", {})

    cache = {
        name.split(".", 1)[1]: counters[name]
        for name in _CACHE_COUNTERS
        if name in counters
    }
    sweep = {
        name.split(".", 1)[1]: counters[name]
        for name in _SWEEP_COUNTERS
        if name in counters
    }
    phases = {
        name: {"count": data["count"], "total_s": data["total_s"]}
        for name, data in snap.get("profile", {}).get("phases", {}).items()
    }
    solver = {
        name: value
        for name, value in snap.get("profile", {}).get("counters", {}).items()
    }

    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "command": command,
        "argv": list(argv) if argv is not None else [],
        "code_fingerprint": code_fingerprint(),
        "config_key": repr(config_key(config)) if config is not None else None,
        "chip": chip,
        "chip_identity": chip_identity,
        "seeds": list(seeds) if seeds is not None else [],
        "faults": faults,
        "jobs": jobs,
        "duration_s": duration_s,
        "cache": cache,
        "sweep": sweep,
        "phases": phases,
        "solver": solver,
        "days": counters.get("sim.days", 0.0),
        "host": host_info(),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


class RunLedger:
    """A directory of run manifests, one atomic JSON file per run.

    Args:
        root: The runs directory (created on first record).
    """

    def __init__(self, root: str | Path = DEFAULT_RUNS_DIR) -> None:
        self.root = Path(root)

    def _unique_run_id(self, command: str) -> str:
        base = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        run_id = f"{base}-{command}"
        n = 1
        # Same-second runs of the same command get a numeric suffix
        # instead of silently overwriting each other's manifest.
        while (self.root / f"{run_id}.json").exists():
            n += 1
            run_id = f"{base}-{command}-{n}"
        return run_id

    def record(self, manifest: dict) -> Path:
        """Atomically persist ``manifest``; returns the file written.

        The manifest gains a ``run_id`` field (derived from timestamp and
        command, uniquified against existing files).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        run_id = self._unique_run_id(manifest.get("command", "run"))
        manifest = dict(manifest, run_id=run_id)
        payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        path = self.root / f"{run_id}.json"
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def run_ids(self) -> list[str]:
        """Recorded run ids, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def load(self, run_id: str) -> dict:
        """The manifest for ``run_id``.

        Raises:
            FileNotFoundError: No such run in this ledger.
            ValueError: The manifest was written by an unknown schema.
        """
        path = self.root / f"{run_id}.json"
        if not path.is_file():
            known = ", ".join(self.run_ids()) or "none recorded"
            raise FileNotFoundError(
                f"no run {run_id!r} under {self.root} (known: {known})"
            )
        manifest = json.loads(path.read_text(encoding="utf-8"))
        schema = manifest.get("schema")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"run {run_id!r} has manifest schema {schema!r}; this build "
                f"reads schema {MANIFEST_SCHEMA_VERSION}"
            )
        return manifest

    def latest(self, n: int = 1) -> list[dict]:
        """The ``n`` most recent manifests, newest first."""
        ids = self.run_ids()
        return [self.load(run_id) for run_id in reversed(ids[-n:])]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_run_list(manifests: list[dict]) -> str:
    """One line per run: id, command, days, duration, cache shape."""
    from repro.harness.reporting import format_table

    rows = []
    for m in manifests:
        cache = m.get("cache", {})
        rows.append([
            m.get("run_id", "?"),
            m.get("command", "?"),
            _fmt(m.get("days")),
            _fmt(m.get("duration_s")),
            _fmt(cache.get("computes")),
            _fmt(cache.get("cache_hits")),
            _fmt(m.get("jobs")),
        ])
    return format_table(
        ["run", "command", "days", "wall [s]", "computed", "mem hits", "jobs"],
        rows,
    )


def render_manifest(manifest: dict) -> str:
    """The full manifest as readable key/value + phase sections."""
    from repro.harness.reporting import format_table
    from repro.telemetry.summary import format_duration

    lines = [
        f"run       {manifest.get('run_id', '?')}",
        f"created   {manifest.get('created', '?')}",
        f"command   {manifest.get('command', '?')} "
        + " ".join(manifest.get("argv", [])),
        f"code      {manifest.get('code_fingerprint', '?')[:16]}",
        f"config    {manifest.get('config_key') or '-'}",
        f"chip      {manifest.get('chip') or '-'}"
        + (
            f" ({manifest['chip_identity'][:16]})"
            if manifest.get("chip_identity")
            else ""
        ),
        f"seeds     {manifest.get('seeds') or '[standard trace]'}",
        f"faults    {manifest.get('faults') or '-'}",
        f"jobs      {_fmt(manifest.get('jobs'))}",
        f"days      {_fmt(manifest.get('days'))}",
        f"duration  {_fmt(manifest.get('duration_s'))} s",
    ]
    host = manifest.get("host", {})
    lines.append(
        f"host      {host.get('platform', '?')} "
        f"python={host.get('python', '?')} cpus={host.get('cpu_count', '?')}"
    )
    for section in ("cache", "sweep", "solver"):
        data = manifest.get(section, {})
        if data:
            rows = [[name, _fmt(value)] for name, value in sorted(data.items())]
            lines.append(f"\n{section}\n" + format_table(["key", "value"], rows))
    phases = manifest.get("phases", {})
    if phases:
        rows = [
            [name, _fmt(data["count"]), format_duration(data["total_s"])]
            for name, data in sorted(
                phases.items(), key=lambda kv: kv[1]["total_s"], reverse=True
            )
        ]
        lines.append("\nphases\n" + format_table(["phase", "calls", "total"], rows))
    return "\n".join(lines)


def diff_manifests(a: dict, b: dict) -> str:
    """A field-by-field comparison of two runs.

    Identity fields (fingerprint, config, seeds, faults) are compared
    exactly; numeric execution fields show both values plus the relative
    change, so "same code, same config, 2x slower" is one glance.
    """
    from repro.harness.reporting import format_table

    id_a = a.get("run_id", "a")
    id_b = b.get("run_id", "b")
    rows = []

    def identity(label: str, key: str) -> None:
        va, vb = a.get(key), b.get(key)
        rows.append([
            label,
            _fmt(va if key != "code_fingerprint" or va is None else va[:16]),
            _fmt(vb if key != "code_fingerprint" or vb is None else vb[:16]),
            "same" if va == vb else "DIFFERS",
        ])

    def numeric(label: str, va, vb) -> None:
        delta = "-"
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            delta = f"{(vb - va) / va:+.1%}"
        rows.append([label, _fmt(va), _fmt(vb), delta])

    identity("command", "command")
    identity("code", "code_fingerprint")
    identity("config", "config_key")
    identity("chip", "chip")
    identity("seeds", "seeds")
    identity("faults", "faults")
    numeric("days", a.get("days"), b.get("days"))
    numeric("duration_s", a.get("duration_s"), b.get("duration_s"))
    numeric("jobs", a.get("jobs"), b.get("jobs"))
    numeric(
        "cpu_count",
        a.get("host", {}).get("cpu_count"),
        b.get("host", {}).get("cpu_count"),
    )
    for section in ("cache", "sweep", "solver"):
        keys = sorted(set(a.get(section, {})) | set(b.get(section, {})))
        for key in keys:
            numeric(
                f"{section}.{key}",
                a.get(section, {}).get(key),
                b.get(section, {}).get(key),
            )
    phase_keys = sorted(set(a.get("phases", {})) | set(b.get("phases", {})))
    for key in phase_keys:
        numeric(
            f"phase.{key} [s]",
            a.get("phases", {}).get(key, {}).get("total_s"),
            b.get("phases", {}).get(key, {}).get("total_s"),
        )
    return format_table(["field", id_a, id_b, "delta"], rows)
