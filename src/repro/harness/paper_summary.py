"""The reproduction's capstone: every headline claim, checked in one pass.

``reproduce_headlines`` runs a representative slice of the evaluation grid
and scores each of the paper's headline claims as reproduced or not;
``render_headlines`` prints the comparison card.  The benchmark suite's
``bench_paper_headlines`` asserts the card stays green.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.locations import ALL_LOCATIONS
from repro.harness.experiments import fig01_fixed_load_utilization
from repro.harness.reporting import format_table
from repro.harness.runner import SimulationRunner, default_runner

__all__ = ["HeadlineClaim", "reproduce_headlines", "render_headlines"]


@dataclass(frozen=True)
class HeadlineClaim:
    """One paper claim and its measured counterpart.

    Attributes:
        claim: The paper's statement.
        paper_value: The number the paper reports.
        measured: What this reproduction measures.
        holds: Whether the claim's *shape* is reproduced.
    """

    claim: str
    paper_value: str
    measured: str
    holds: bool


def reproduce_headlines(
    runner: SimulationRunner | None = None,
    mixes: tuple[str, ...] = ("H1", "L1", "HM2", "ML2"),
    months: tuple[int, ...] = (1, 7),
) -> list[HeadlineClaim]:
    """Measure every headline claim on a representative grid slice.

    Args:
        runner: Simulation cache (full resolution by default).
        mixes: Workload subset (the full ten make the same point slower).
        months: Month subset.

    Returns:
        One :class:`HeadlineClaim` per claim, in the paper's order.
    """
    runner = runner or default_runner
    claims: list[HeadlineClaim] = []

    # -- Figure 1: >50% energy loss for a fixed load at 400 W/m^2.
    fig1 = dict(fig01_fixed_load_utilization())
    loss_400 = 1.0 - fig1[400.0]
    claims.append(HeadlineClaim(
        claim="fixed load at 400 W/m^2 wastes most of the energy (Fig 1)",
        paper_value="> 50 % loss",
        measured=f"{loss_400:.1%} loss",
        holds=loss_400 > 0.5,
    ))

    # -- Shared day grid.
    opt_days = [
        runner.day(mix_name, loc.code, month, "MPPT&Opt")
        for loc in ALL_LOCATIONS
        for month in months
        for mix_name in mixes
    ]

    # -- Abstract: ~82% average green-energy utilization.
    used = sum(d.solar_used_wh for d in opt_days)
    available = sum(d.solar_available_wh for d in opt_days)
    utilization = used / available
    claims.append(HeadlineClaim(
        claim="average solar energy utilization (abstract)",
        paper_value="82 %",
        measured=f"{utilization:.1%}",
        holds=0.74 <= utilization <= 0.92,
    ))

    # -- Table 7: tracking error band and structure.
    errors = [d.mean_tracking_error for d in opt_days]
    h1_errors = [d.mean_tracking_error for d in opt_days if d.mix_name == "H1"]
    l1_errors = [d.mean_tracking_error for d in opt_days if d.mix_name == "L1"]
    if h1_errors and l1_errors:
        h1, l1 = float(np.mean(h1_errors)), float(np.mean(l1_errors))
        structure = f", H1 {h1:.1%} vs L1 {l1:.1%}"
        structure_holds = h1 > l1
    else:  # reduced grids without both mixes check the band only
        structure = ""
        structure_holds = True
    claims.append(HeadlineClaim(
        claim="tracking error band, H1 worse than L1 (Table 7)",
        paper_value="4-22 %, H1 > L1",
        measured=f"{min(errors):.1%}-{max(errors):.1%}{structure}",
        holds=max(errors) < 0.25 and structure_holds,
    ))

    # -- Figure 21: policy ordering and battery parity.
    def grand_mean(policy: str) -> float:
        values = []
        for loc in ALL_LOCATIONS:
            for month in months:
                for mix_name in mixes:
                    base = runner.battery_day(mix_name, loc.code, month, 0.81).ptp
                    values.append(
                        runner.day(mix_name, loc.code, month, policy).ptp / base
                    )
        return float(np.mean(values))

    ic, rr, opt = (grand_mean(p) for p in ("MPPT&IC", "MPPT&RR", "MPPT&Opt"))
    battery_u = 0.92 / 0.81
    claims.append(HeadlineClaim(
        claim="MPPT&Opt beats MPPT&RR (Fig 21)",
        paper_value="+10.8 %",
        measured=f"+{(opt / rr - 1.0):.1%}",
        holds=opt > rr,
    ))
    claims.append(HeadlineClaim(
        claim="MPPT&Opt beats MPPT&IC (Fig 21)",
        paper_value="+37.8 %",
        measured=f"+{(opt / ic - 1.0):.1%}",
        holds=opt / ic > 1.15,
    ))
    claims.append(HeadlineClaim(
        claim="SolarCore within ~1 % of the best battery system (Fig 21)",
        paper_value="-1 %",
        measured=f"{(opt / battery_u - 1.0):+.1%}",
        holds=abs(opt / battery_u - 1.0) < 0.10,
    ))

    # -- Section 6.2: >= +43% over the best fixed budget.
    best_fixed = 0.0
    reference = runner.day("HM2", "PFCI", 1, "MPPT&Opt").ptp
    for budget in (60.0, 75.0, 100.0, 125.0):
        best_fixed = max(
            best_fixed, runner.fixed_day("HM2", "PFCI", 1, budget).ptp
        )
    advantage = reference / best_fixed - 1.0
    claims.append(HeadlineClaim(
        claim="SolarCore vs best Fixed-Power budget (Fig 17)",
        paper_value=">= +43 %",
        measured=f"+{advantage:.1%}",
        holds=advantage >= 0.30,
    ))

    return claims


def render_headlines(claims: list[HeadlineClaim]) -> str:
    """Render the comparison card."""
    rows = [
        [c.claim, c.paper_value, c.measured, "yes" if c.holds else "NO"]
        for c in claims
    ]
    return format_table(["claim", "paper", "measured", "holds"], rows)
