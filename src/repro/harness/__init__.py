"""Experiment harness: cached runner, per-figure experiments, reporting."""

from repro.harness.experiments import (
    BATTERY_BOUNDS,
    DEFAULT_BUDGETS_W,
    POLICIES,
    TrackingTrace,
    fig01_fixed_load_utilization,
    fig04_cell_curves,
    fig06_module_irradiance_curves,
    fig07_module_temperature_curves,
    fig13_14_tracking,
    fig15_duration_vs_threshold,
    fig16_energy_vs_threshold,
    fig17_ptp_vs_threshold,
    fig18_energy_utilization,
    fig19_effective_duration,
    fig20_utilization_vs_duration,
    fig21_normalized_ptp,
    table7_tracking_error,
)
from repro.harness.reporting import (
    format_series,
    format_table,
    render_fig18,
    render_fig21_summary,
    render_table7,
    sparkline,
)
from repro.harness.export import day_to_csv, day_to_json, table_to_csv
from repro.harness.paper_summary import (
    HeadlineClaim,
    render_headlines,
    reproduce_headlines,
)
from repro.harness.runner import SimulationRunner, default_runner
from repro.harness.validation import (
    ValidationCase,
    ValidationReport,
    validate_mppt,
)

__all__ = [
    "ValidationCase",
    "ValidationReport",
    "validate_mppt",
    "HeadlineClaim",
    "reproduce_headlines",
    "render_headlines",
    "day_to_csv",
    "day_to_json",
    "table_to_csv",
    "SimulationRunner",
    "default_runner",
    "POLICIES",
    "BATTERY_BOUNDS",
    "DEFAULT_BUDGETS_W",
    "TrackingTrace",
    "fig01_fixed_load_utilization",
    "fig04_cell_curves",
    "fig06_module_irradiance_curves",
    "fig07_module_temperature_curves",
    "fig13_14_tracking",
    "table7_tracking_error",
    "fig15_duration_vs_threshold",
    "fig16_energy_vs_threshold",
    "fig17_ptp_vs_threshold",
    "fig18_energy_utilization",
    "fig19_effective_duration",
    "fig20_utilization_vs_duration",
    "fig21_normalized_ptp",
    "format_table",
    "format_series",
    "render_table7",
    "render_fig18",
    "render_fig21_summary",
    "sparkline",
]
