"""Export simulation results to CSV/JSON for external analysis.

The repository's own reporting is ASCII; anyone regenerating the paper's
figures in a plotting tool needs the raw series.  ``day_to_csv`` dumps a
:class:`~repro.core.simulation.DayResult`'s time series; ``table_to_csv``
flattens the nested dict structures the experiment functions return;
``day_to_json`` serializes the full result including scalar metrics.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping
from pathlib import Path

from repro.core.simulation import DayResult

__all__ = ["day_to_csv", "day_to_json", "table_to_csv"]


def day_to_csv(day: DayResult, destination: str | Path | io.TextIOBase) -> None:
    """Write a day's time series as CSV.

    Columns: minute, mpp_w, consumed_w, throughput_gips, on_solar.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            day_to_csv(day, handle)
        return
    writer = csv.writer(destination)
    writer.writerow(["minute", "mpp_w", "consumed_w", "throughput_gips", "on_solar"])
    for i in range(len(day.minutes)):
        writer.writerow([
            f"{day.minutes[i]:.1f}",
            f"{day.mpp_w[i]:.3f}",
            f"{day.consumed_w[i]:.3f}",
            f"{day.throughput_gips[i]:.4f}",
            int(day.on_solar[i]),
        ])


def day_to_json(day: DayResult, destination: str | Path | io.TextIOBase | None = None) -> str:
    """Serialize a day result (series + derived metrics) as JSON.

    Returns the JSON text; also writes it when a destination is given.
    """
    payload = {
        "mix": day.mix_name,
        "location": day.location_code,
        "month": day.month,
        "policy": day.policy,
        "metrics": {
            "energy_utilization": day.energy_utilization,
            "effective_duration_fraction": day.effective_duration_fraction,
            "mean_tracking_error": day.mean_tracking_error,
            "ptp_ginst": day.ptp,
            "solar_available_wh": day.solar_available_wh,
            "solar_used_wh": day.solar_used_wh,
            "utility_wh": day.utility_wh,
            "tracking_events": day.tracking_events,
            "dvfs_transitions": day.dvfs_transitions,
        },
        "series": {
            "minute": [float(v) for v in day.minutes],
            "mpp_w": [round(float(v), 3) for v in day.mpp_w],
            "consumed_w": [round(float(v), 3) for v in day.consumed_w],
            "throughput_gips": [round(float(v), 4) for v in day.throughput_gips],
            "on_solar": [bool(v) for v in day.on_solar],
        },
    }
    text = json.dumps(payload, indent=2)
    if destination is not None:
        if isinstance(destination, (str, Path)):
            Path(destination).write_text(text)
        else:
            destination.write(text)
    return text


def table_to_csv(
    table: Mapping,
    destination: str | Path | io.TextIOBase,
    key_names: tuple[str, ...] = ("key",),
) -> None:
    """Flatten a nested experiment table into CSV rows.

    Keys that are tuples are split across the ``key_names`` columns; values
    that are mappings become one column per entry, otherwise a single
    ``value`` column.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            table_to_csv(table, handle, key_names)
        return
    writer = csv.writer(destination)
    first_value = next(iter(table.values()), None)
    if isinstance(first_value, Mapping):
        value_columns = list(first_value.keys())
    else:
        value_columns = ["value"]
    writer.writerow(list(key_names) + [str(c) for c in value_columns])
    for key, value in table.items():
        key_cells = list(key) if isinstance(key, tuple) else [key]
        if len(key_cells) != len(key_names):
            raise ValueError(
                f"key {key!r} has {len(key_cells)} parts, expected {len(key_names)}"
            )
        if isinstance(value, Mapping):
            cells = [value[c] for c in value_columns]
        else:
            cells = [value]
        writer.writerow([str(c) for c in key_cells] + [f"{v}" for v in cells])
