"""One function per paper table/figure: the reproduction experiment index.

Every public function regenerates the data behind one artifact of the
paper's evaluation (Section 6) — same axes, same workloads, same sweep
ranges — returning plain data structures that
:mod:`repro.harness.reporting` renders as the rows/series the paper prints.

    fig01_fixed_load_utilization   Figure 1
    fig04_cell_curves              Figure 4
    fig06_module_irradiance_curves Figure 6
    fig07_module_temperature_curves Figure 7
    fig13_14_tracking              Figures 13 & 14
    table7_tracking_error          Table 7
    fig15_duration_vs_threshold    Figure 15
    fig16_energy_vs_threshold      Figure 16
    fig17_ptp_vs_threshold         Figure 17
    fig18_energy_utilization       Figure 18
    fig19_effective_duration       Figure 19
    fig20_utilization_vs_duration  Figure 20
    fig21_normalized_ptp           Figure 21
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.environment.locations import ALL_LOCATIONS, EVALUATED_MONTHS
from repro.harness.parallel import SweepTask, grid_tasks
from repro.harness.runner import SimulationRunner, default_runner
from repro.metrics.utilization import DURATION_BUCKETS
from repro.pv.array import PVArray
from repro.pv.cell import PVCell
from repro.pv.curves import IVCurve, sample_iv_curve
from repro.pv.module import PVModule
from repro.pv.mpp import find_mpp
from repro.pv.params import bp3180n
from repro.workloads.mixes import ALL_MIX_NAMES

__all__ = [
    "fig01_fixed_load_utilization",
    "fig04_cell_curves",
    "fig06_module_irradiance_curves",
    "fig07_module_temperature_curves",
    "fig13_14_tracking",
    "table7_tracking_error",
    "fig15_duration_vs_threshold",
    "fig16_energy_vs_threshold",
    "fig17_ptp_vs_threshold",
    "fig18_energy_utilization",
    "fig19_effective_duration",
    "fig20_utilization_vs_duration",
    "fig21_normalized_ptp",
    "TrackingTrace",
    "BATTERY_BOUNDS",
    "POLICIES",
    "DEFAULT_BUDGETS_W",
    "standard_grid_tasks",
    "prefetch_standard_grid",
]

#: The three MPPT load-adaptation policies, in Table 6 order.
POLICIES = ("MPPT&IC", "MPPT&RR", "MPPT&Opt")

#: Battery-system overall de-rating bounds used in Figures 18/21.
BATTERY_BOUNDS = {"Battery-L": 0.81, "Battery-U": 0.92}

#: Fixed power budgets swept in Figures 15-17 [W].  The paper sweeps
#: 25-125 W; our chip's uncore floor shifts the feasible range upward.
DEFAULT_BUDGETS_W = (50.0, 60.0, 75.0, 100.0, 125.0)


# ----------------------------------------------------------------------
# The evaluation grid, as sweep tasks (the parallel engine's unit)
# ----------------------------------------------------------------------
def standard_grid_tasks(
    mixes: tuple[str, ...] = ALL_MIX_NAMES,
    months: tuple[int, ...] = EVALUATED_MONTHS,
    locations=ALL_LOCATIONS,
    policies: tuple[str, ...] = POLICIES,
    budgets_w: tuple[float, ...] = DEFAULT_BUDGETS_W,
    deratings: tuple[float, ...] = tuple(BATTERY_BOUNDS.values()),
) -> list[SweepTask]:
    """Every day simulation the Section 6 figures slice, as sweep tasks.

    The full default grid is what Figures 13-21 and Table 7 share: every
    (location, month, mix) cell under each MPPT policy, each Fixed-Power
    budget, and both battery bounds.  Narrow the keyword arguments to
    build the subset one experiment needs.
    """
    return grid_tasks(
        mixes, locations, months,
        policies=policies, budgets_w=budgets_w, deratings=deratings,
    )


def prefetch_standard_grid(
    runner: SimulationRunner | None = None, **grid_kwargs
) -> SimulationRunner:
    """Materialize (a subset of) the evaluation grid into ``runner``.

    With ``runner.jobs > 1`` the missing cells fan out across worker
    processes; afterwards every experiment function below is a pure
    cache read.  Keyword arguments narrow the grid as in
    :func:`standard_grid_tasks`.

    Returns:
        The (possibly default) runner, now holding the grid.
    """
    runner = runner or default_runner
    runner.prefetch(standard_grid_tasks(**grid_kwargs))
    return runner


# ----------------------------------------------------------------------
# Figure 1 — why fixed loads waste solar energy
# ----------------------------------------------------------------------
def fig01_fixed_load_utilization(
    irradiances: tuple[float, ...] = (1000.0, 800.0, 600.0, 400.0),
    cell_temp_c: float = 25.0,
) -> list[tuple[float, float]]:
    """Energy utilization of a *fixed* resistive load vs irradiance.

    The load is sized to hit the MPP at the first (highest) irradiance, then
    held fixed while irradiance drops — reproducing Figure 1's >50 % loss at
    400 W/m^2.

    Returns:
        ``[(irradiance, utilization), ...]`` with utilization in [0, 1+].
    """
    array = PVArray()
    reference = find_mpp(array, irradiances[0], cell_temp_c)
    resistance = reference.voltage / reference.current

    rows = []
    for g in irradiances:
        voc = array.open_circuit_voltage(g, cell_temp_c)
        v_op = float(
            brentq(
                lambda v: array.current(v, g, cell_temp_c) - v / resistance,
                1e-9,
                voc,
            )
        )
        power = v_op * array.current(v_op, g, cell_temp_c)
        mpp = find_mpp(array, g, cell_temp_c)
        rows.append((g, power / mpp.power))
    return rows


# ----------------------------------------------------------------------
# Figures 4, 6, 7 — device characteristics
# ----------------------------------------------------------------------
def fig04_cell_curves(
    irradiance: float = 1000.0,
    cell_temp_c: float = 25.0,
    n_points: int = 100,
) -> IVCurve:
    """Single-cell I-V/P-V characteristic with its MPP (Figure 4)."""
    cell = PVCell(bp3180n().cell)
    return sample_iv_curve(cell, irradiance, cell_temp_c, n_points)


def fig06_module_irradiance_curves(
    irradiances: tuple[float, ...] = (400.0, 600.0, 800.0, 1000.0),
    cell_temp_c: float = 25.0,
    n_points: int = 100,
) -> dict[float, IVCurve]:
    """BP3180N module curves across irradiance at fixed temperature (Fig 6)."""
    module = PVModule(bp3180n())
    return {
        g: sample_iv_curve(module, g, cell_temp_c, n_points) for g in irradiances
    }


def fig07_module_temperature_curves(
    temperatures_c: tuple[float, ...] = (0.0, 25.0, 50.0, 75.0),
    irradiance: float = 1000.0,
    n_points: int = 100,
) -> dict[float, IVCurve]:
    """BP3180N module curves across temperature at fixed irradiance (Fig 7)."""
    module = PVModule(bp3180n())
    return {
        t: sample_iv_curve(module, irradiance, t, n_points) for t in temperatures_c
    }


# ----------------------------------------------------------------------
# Figures 13/14 — tracking traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrackingTrace:
    """One tracking-accuracy trace (a panel of Figure 13/14).

    Attributes:
        mix_name: Workload mix.
        minutes: Time axis [minutes since midnight].
        budget_w: Maximal power budget (panel MPP) series [W].
        actual_w: Actual power consumption series [W].
    """

    mix_name: str
    minutes: np.ndarray
    budget_w: np.ndarray
    actual_w: np.ndarray

    @property
    def mean_error(self) -> float:
        """Mean relative tracking error over solar-powered samples.

        Samples with zero actual power are utility-powered periods (the
        figure plots them at zero) and are excluded, as in Table 7.
        """
        mask = (self.budget_w > 0) & (self.actual_w > 0)
        return float(
            np.mean(
                np.abs(self.actual_w[mask] - self.budget_w[mask])
                / self.budget_w[mask]
            )
        )


def fig13_14_tracking(
    month: int,
    mixes: tuple[str, ...] = ("H1", "HM2", "L1"),
    location: str = "AZ",
    runner: SimulationRunner | None = None,
) -> dict[str, TrackingTrace]:
    """MPP tracking traces at AZ (Figure 13: Jan; Figure 14: Jul).

    Returns one :class:`TrackingTrace` per requested mix.
    """
    runner = runner or default_runner
    traces = {}
    for mix_name in mixes:
        day = runner.day(mix_name, location, month, "MPPT&Opt")
        traces[mix_name] = TrackingTrace(
            mix_name=mix_name,
            minutes=day.minutes,
            budget_w=day.mpp_w,
            actual_w=np.where(day.on_solar, day.consumed_w, 0.0),
        )
    return traces


# ----------------------------------------------------------------------
# Table 7 — tracking error across the full grid
# ----------------------------------------------------------------------
def table7_tracking_error(
    runner: SimulationRunner | None = None,
    mixes: tuple[str, ...] = ALL_MIX_NAMES,
    months: tuple[int, ...] = EVALUATED_MONTHS,
) -> dict[tuple[str, int], dict[str, float]]:
    """Mean relative tracking error per (location, month) x mix (Table 7).

    Returns:
        ``{(location_code, month): {mix_name: error}}``.
    """
    runner = runner or default_runner
    table: dict[tuple[str, int], dict[str, float]] = {}
    for location in ALL_LOCATIONS:
        for month in months:
            row = {}
            for mix_name in mixes:
                day = runner.day(mix_name, location.code, month, "MPPT&Opt")
                row[mix_name] = day.mean_tracking_error
            table[(location.code, month)] = row
    return table


# ----------------------------------------------------------------------
# Figures 15-17 — the Fixed-Power sweeps
# ----------------------------------------------------------------------
def fig15_duration_vs_threshold(
    budgets_w: tuple[float, ...] = DEFAULT_BUDGETS_W,
    mix_name: str = "HM2",
    runner: SimulationRunner | None = None,
    locations=ALL_LOCATIONS,
    months: tuple[int, ...] = EVALUATED_MONTHS,
) -> dict[tuple[str, int], list[tuple[float, float]]]:
    """Effective operation duration vs power-transfer threshold (Figure 15).

    Returns:
        ``{(location, month): [(budget, duration_fraction), ...]}`` — the
        per-case decline curves the paper groups into slow/linear/rapid.
    """
    runner = runner or default_runner
    curves: dict[tuple[str, int], list[tuple[float, float]]] = {}
    for location in locations:
        for month in months:
            curve = []
            for budget in budgets_w:
                day = runner.fixed_day(mix_name, location.code, month, budget)
                curve.append((budget, day.effective_duration_fraction))
            curves[(location.code, month)] = curve
    return curves


def _fixed_vs_solarcore(
    metric: str,
    budgets_w: tuple[float, ...],
    mixes: tuple[str, ...],
    runner: SimulationRunner,
    locations=ALL_LOCATIONS,
    months: tuple[int, ...] = EVALUATED_MONTHS,
) -> dict[str, dict[int, list[tuple[float, float]]]]:
    """Shared sweep for Figures 16 (energy) and 17 (PTP)."""
    out: dict[str, dict[int, list[tuple[float, float]]]] = {}
    for location in locations:
        per_month: dict[int, list[tuple[float, float]]] = {}
        for month in months:
            points = []
            for budget in budgets_w:
                ratios = []
                for mix_name in mixes:
                    solarcore = runner.day(mix_name, location.code, month, "MPPT&Opt")
                    fixed = runner.fixed_day(mix_name, location.code, month, budget)
                    if metric == "energy":
                        base = solarcore.solar_used_wh
                        value = fixed.solar_used_wh
                    else:
                        base = solarcore.ptp
                        value = fixed.ptp
                    ratios.append(value / base if base > 0 else 0.0)
                points.append((budget, float(np.mean(ratios))))
            per_month[month] = points
        out[location.code] = per_month
    return out


def fig16_energy_vs_threshold(
    budgets_w: tuple[float, ...] = DEFAULT_BUDGETS_W,
    mixes: tuple[str, ...] = ("H1", "L1", "HM2", "ML2"),
    runner: SimulationRunner | None = None,
    locations=ALL_LOCATIONS,
    months: tuple[int, ...] = EVALUATED_MONTHS,
) -> dict[str, dict[int, list[tuple[float, float]]]]:
    """Fixed-Power solar energy drawn, normalized to SolarCore (Figure 16)."""
    return _fixed_vs_solarcore(
        "energy", budgets_w, mixes, runner or default_runner, locations, months
    )


def fig17_ptp_vs_threshold(
    budgets_w: tuple[float, ...] = DEFAULT_BUDGETS_W,
    mixes: tuple[str, ...] = ("H1", "L1", "HM2", "ML2"),
    runner: SimulationRunner | None = None,
    locations=ALL_LOCATIONS,
    months: tuple[int, ...] = EVALUATED_MONTHS,
) -> dict[str, dict[int, list[tuple[float, float]]]]:
    """Fixed-Power PTP, normalized to SolarCore (Figure 17)."""
    return _fixed_vs_solarcore(
        "ptp", budgets_w, mixes, runner or default_runner, locations, months
    )


# ----------------------------------------------------------------------
# Figures 18-20 — utilization and duration
# ----------------------------------------------------------------------
def fig18_energy_utilization(
    runner: SimulationRunner | None = None,
    mixes: tuple[str, ...] = ALL_MIX_NAMES,
    months: tuple[int, ...] = EVALUATED_MONTHS,
    locations=ALL_LOCATIONS,
) -> dict[str, dict[str, dict[str, float]]]:
    """Average energy utilization by location x mix x policy (Figure 18).

    Returns:
        ``{location: {mix: {policy: utilization}}}`` — compare against the
        battery bounds in :data:`BATTERY_BOUNDS`.
    """
    runner = runner or default_runner
    out: dict[str, dict[str, dict[str, float]]] = {}
    for location in locations:
        per_mix: dict[str, dict[str, float]] = {}
        for mix_name in mixes:
            per_policy = {}
            for policy in POLICIES:
                days = [
                    runner.day(mix_name, location.code, month, policy)
                    for month in months
                ]
                used = sum(d.solar_used_wh for d in days)
                available = sum(d.solar_available_wh for d in days)
                per_policy[policy] = used / available if available > 0 else 0.0
            per_mix[mix_name] = per_policy
        out[location.code] = per_mix
    return out


def fig19_effective_duration(
    runner: SimulationRunner | None = None,
    mix_name: str = "HM2",
) -> dict[tuple[str, int], float]:
    """Effective operation duration per (location, month) (Figure 19)."""
    runner = runner or default_runner
    return {
        (location.code, month): runner.day(
            mix_name, location.code, month, "MPPT&Opt"
        ).effective_duration_fraction
        for location in ALL_LOCATIONS
        for month in EVALUATED_MONTHS
    }


def fig20_utilization_vs_duration(
    runner: SimulationRunner | None = None,
    mixes: tuple[str, ...] = ALL_MIX_NAMES,
    months: tuple[int, ...] = EVALUATED_MONTHS,
    locations=ALL_LOCATIONS,
) -> dict[tuple[float, float], dict[str, float]]:
    """Mean utilization per effective-duration bucket x policy (Figure 20)."""
    runner = runner or default_runner
    sums: dict[tuple[float, float], dict[str, list[float]]] = {
        bucket: {policy: [] for policy in POLICIES} for bucket in DURATION_BUCKETS
    }
    for location in locations:
        for month in months:
            for mix_name in mixes:
                for policy in POLICIES:
                    day = runner.day(mix_name, location.code, month, policy)
                    duration = day.effective_duration_fraction
                    for low, high in DURATION_BUCKETS:
                        if low <= duration < high:
                            sums[(low, high)][policy].append(day.energy_utilization)
                            break
    return {
        bucket: {
            policy: float(np.mean(vals)) if vals else float("nan")
            for policy, vals in per_policy.items()
        }
        for bucket, per_policy in sums.items()
    }


# ----------------------------------------------------------------------
# Figure 21 — the headline performance comparison
# ----------------------------------------------------------------------
def fig21_normalized_ptp(
    runner: SimulationRunner | None = None,
    mixes: tuple[str, ...] = ALL_MIX_NAMES,
    months: tuple[int, ...] = EVALUATED_MONTHS,
    locations=ALL_LOCATIONS,
) -> dict[tuple[str, int, str], dict[str, float]]:
    """PTP of every policy normalized to Battery-L (Figure 21).

    Returns:
        ``{(location, month, mix): {policy_or_battery: normalized PTP}}``.
    """
    runner = runner or default_runner
    out: dict[tuple[str, int, str], dict[str, float]] = {}
    for location in locations:
        for month in months:
            for mix_name in mixes:
                baseline = runner.battery_day(
                    mix_name, location.code, month, BATTERY_BOUNDS["Battery-L"]
                ).ptp
                row = {}
                for policy in POLICIES:
                    day = runner.day(mix_name, location.code, month, policy)
                    row[policy] = day.ptp / baseline
                row["Battery-U"] = (
                    runner.battery_day(
                        mix_name, location.code, month, BATTERY_BOUNDS["Battery-U"]
                    ).ptp
                    / baseline
                )
                row["Battery-L"] = 1.0
                out[(location.code, month, mix_name)] = row
    return out
