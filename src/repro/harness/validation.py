"""Standalone MPPT correctness validation (the paper's Simulink step).

Section 5: "We validated the correctness of the maximal power point
tracking algorithm using MATLAB and Simulink before incorporating it into
our architecture simulator."  This module is that gate, in-repo: it sweeps
the controller over a grid of environmental conditions and workload states
and checks the invariants a correct tracker must satisfy —

  * never draws more than the panel's true MPP power,
  * converges into the margin band below the MPP (unless the chip
    saturates first),
  * leaves the rail voltage near nominal,
  * is stable: re-tracking under unchanged conditions stays put.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.load_tuning import make_tuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import mix

__all__ = ["ValidationCase", "ValidationReport", "validate_mppt"]

#: Environmental grid: (irradiance, cell temperature) pairs.
DEFAULT_CONDITIONS = (
    (1000.0, 55.0), (900.0, 50.0), (750.0, 45.0), (600.0, 40.0),
    (450.0, 35.0), (300.0, 28.0), (200.0, 22.0),
)


@dataclass(frozen=True)
class ValidationCase:
    """One validated grid point.

    Attributes:
        mix_name: Workload on the chip.
        policy: Load-adaptation policy.
        irradiance: Condition irradiance [W/m^2].
        cell_temp_c: Condition cell temperature [C].
        mpp_power: True MPP power [W].
        tracked_power: Power after the tracking event [W].
        rail_voltage: Rail voltage after tracking [V].
        saturated: Whether the chip hit its top levels below the MPP.
        floor_limited: Whether even the chip's minimum configuration
            exceeds the panel's MPP (a state the transfer switch prevents
            during operation — only the no-overdraw invariant applies).
        retrack_drift: |power change| of an immediate re-track [W].
    """

    mix_name: str
    policy: str
    irradiance: float
    cell_temp_c: float
    mpp_power: float
    tracked_power: float
    rail_voltage: float
    saturated: bool
    floor_limited: bool
    retrack_drift: float

    @property
    def efficiency(self) -> float:
        """Tracked / true MPP power."""
        if self.mpp_power <= 0:
            return 0.0
        return self.tracked_power / self.mpp_power

    def passes(self, config: SolarCoreConfig) -> bool:
        """Whether this case satisfies every tracker invariant."""
        if self.tracked_power > self.mpp_power * (1.0 + 1e-6):
            return False
        if self.floor_limited:
            return True
        if not self.saturated:
            floor = 1.0 - config.power_margin - 0.12  # margin + quantization
            if self.efficiency < floor:
                return False
            if abs(self.rail_voltage - config.rail_voltage) > 6 * config.rail_tolerance_v:
                return False
        if self.retrack_drift > 0.15 * max(self.tracked_power, 1.0):
            return False
        return True


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a validation sweep.

    Attributes:
        cases: Every validated grid point.
        config: The configuration validated against.
    """

    cases: tuple[ValidationCase, ...]
    config: SolarCoreConfig

    @property
    def failures(self) -> list[ValidationCase]:
        """Cases violating a tracker invariant."""
        return [case for case in self.cases if not case.passes(self.config)]

    @property
    def all_pass(self) -> bool:
        """True when every case satisfies the invariants."""
        return not self.failures

    @property
    def mean_efficiency(self) -> float:
        """Mean tracked/MPP ratio over non-saturated cases."""
        values = [c.efficiency for c in self.cases if not c.saturated]
        if not values:
            return 1.0
        return sum(values) / len(values)


def validate_mppt(
    mixes: tuple[str, ...] = ("H1", "L1", "HM2"),
    policies: tuple[str, ...] = ("MPPT&Opt",),
    conditions: tuple[tuple[float, float], ...] = DEFAULT_CONDITIONS,
    config: SolarCoreConfig | None = None,
) -> ValidationReport:
    """Sweep the controller over a validation grid.

    Args:
        mixes: Workload mixes to validate under.
        policies: Load-adaptation policies to validate.
        conditions: (irradiance, cell temperature) grid.
        config: Controller configuration.

    Returns:
        A :class:`ValidationReport`; callers assert ``report.all_pass``.
    """
    cfg = config or SolarCoreConfig()
    array = PVArray()
    cases = []
    for mix_name in mixes:
        for policy in policies:
            chip = MultiCoreChip(mix(mix_name), spec=cfg.chip_spec)
            chip.set_all_min()
            controller = SolarCoreController(
                array,
                DCDCConverter(),
                chip,
                make_tuner(policy, cfg.enable_pcpg),
                cfg,
            )
            for irradiance, temp in conditions:
                mpp = find_mpp(array, irradiance, temp)
                floor = chip.floor_power_at(120.0, with_gating=cfg.enable_pcpg)
                result = controller.track(irradiance, temp, minute=120.0)
                retrack = controller.track(irradiance, temp, minute=120.0)
                cases.append(
                    ValidationCase(
                        mix_name=mix_name,
                        policy=policy,
                        irradiance=irradiance,
                        cell_temp_c=temp,
                        mpp_power=mpp.power,
                        tracked_power=result.power_w,
                        rail_voltage=result.rail_voltage,
                        saturated=result.load_saturated,
                        floor_limited=floor > mpp.power,
                        retrack_drift=abs(retrack.power_w - result.power_w),
                    )
                )
    return ValidationReport(cases=tuple(cases), config=cfg)
